package lint

// goroutine-lifetime: every `go` statement must start a goroutine that can
// actually finish. The analyzer resolves the spawned entry through the
// call graph (function literals and module-local functions), then examines
// every unbounded loop (`for {}` / constant-true condition) in the
// goroutine's synchronous call extent:
//
//   - a loop with no return/break/goto can never be joined — finding;
//   - a loop that exits, but never consults a shutdown signal (select,
//     channel receive, range over a channel, ctx.Done/ctx.Err, Wait) exits
//     only by accident, not by design — finding.
//
// Bounded loops and loop-free goroutines terminate on their own and are
// clean. Spawns of non-module functions (e.g. http.Server.Serve) are out
// of analysis reach and skipped.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// GoroutineLifetime reports goroutines that cannot be shut down.
var GoroutineLifetime = &Analyzer{
	Name:      "goroutine-lifetime",
	Doc:       "every go statement must reach a ctx/done/channel-driven exit on all paths — no unjoinable goroutines",
	RunModule: runGoroutineLifetime,
}

func runGoroutineLifetime(mod *Module) []Finding {
	fc := mod.flow()
	// Memoized per-node loop verdicts: the same helper spawned from many
	// sites is scanned once.
	verdicts := map[*cgNode][]loopVerdict{}
	var findings []Finding
	for _, gs := range fc.graph.goSites {
		if gs.entry == nil {
			continue
		}
		for _, n := range reachableFrom(gs.entry) {
			for _, v := range loopVerdictsOf(n, verdicts) {
				switch {
				case !v.exits:
					findings = append(findings, gs.pkg.finding(gs.stmt, "goroutine-lifetime",
						"goroutine runs an unbounded loop (%s in %s) with no return or break — it can never be joined or shut down",
						shortPos(v.pos), n.name))
				case !v.signal && n == gs.entry:
					// The signal-driven requirement binds the goroutine's own
					// main loop; algorithmic loops in helpers (rejection
					// sampling and the like) exit by returning a value.
					findings = append(findings, gs.pkg.finding(gs.stmt, "goroutine-lifetime",
						"goroutine's unbounded loop (%s in %s) exits without watching a ctx/done/channel signal — shutdown cannot reach it",
						shortPos(v.pos), n.name))
				}
			}
		}
	}
	return findings
}

// loopVerdict is the analysis of one unbounded loop.
type loopVerdict struct {
	pos    token.Position
	exits  bool
	signal bool
}

// reachableFrom collects the nodes a goroutine executes synchronously:
// the entry plus everything reachable over non-go call edges.
func reachableFrom(entry *cgNode) []*cgNode {
	seen := map[*cgNode]bool{entry: true}
	order := []*cgNode{entry}
	for i := 0; i < len(order); i++ {
		for _, e := range order[i].out {
			if e.goCall || seen[e.callee] {
				continue
			}
			seen[e.callee] = true
			order = append(order, e.callee)
		}
	}
	return order
}

// loopVerdictsOf scans one function body for unbounded loops.
func loopVerdictsOf(n *cgNode, memo map[*cgNode][]loopVerdict) []loopVerdict {
	if v, ok := memo[n]; ok {
		return v
	}
	var out []loopVerdict
	body := n.body()
	if body == nil {
		memo[n] = out
		return out
	}
	// Track the label attached to each loop so labeled breaks resolve.
	labels := map[ast.Stmt]string{}
	ast.Inspect(body, func(x ast.Node) bool {
		if ls, ok := x.(*ast.LabeledStmt); ok {
			labels[ls.Stmt] = ls.Label.Name
		}
		return true
	})
	ast.Inspect(body, func(x ast.Node) bool {
		if fl, ok := x.(*ast.FuncLit); ok && fl != n.lit {
			return false
		}
		fs, ok := x.(*ast.ForStmt)
		if !ok {
			return true
		}
		if !unboundedCond(n.pkg, fs.Cond) {
			return true
		}
		out = append(out, loopVerdict{
			pos:    n.pkg.position(fs),
			exits:  loopExits(fs.Body, labels[ast.Stmt(fs)]),
			signal: loopHasSignal(n.pkg, fs.Body, n.lit),
		})
		return true
	})
	memo[n] = out
	return out
}

// unboundedCond reports a loop that can only end via an explicit exit:
// no condition, or a condition that is constantly true.
func unboundedCond(pkg *Package, cond ast.Expr) bool {
	if cond == nil {
		return true
	}
	if tv, ok := pkg.Info.Types[cond]; ok && tv.Value != nil {
		return constant.BoolVal(tv.Value)
	}
	return false
}

// loopExits reports whether the loop body contains a statement that leaves
// the loop: a return, a break targeting this loop, or any goto.
func loopExits(body *ast.BlockStmt, label string) bool {
	return stmtsExit(body.List, 0, label)
}

func stmtsExit(list []ast.Stmt, depth int, label string) bool {
	for _, s := range list {
		if stmtExits(s, depth, label) {
			return true
		}
	}
	return false
}

func stmtExits(s ast.Stmt, depth int, label string) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if s.Label == nil {
				return depth == 0
			}
			return label != "" && s.Label.Name == label
		case token.GOTO:
			// A goto may leave the loop; assume it does (conservative
			// toward fewer findings, and gotos are vanishingly rare here).
			return true
		}
	case *ast.BlockStmt:
		return stmtsExit(s.List, depth, label)
	case *ast.IfStmt:
		if stmtExits(s.Body, depth, label) {
			return true
		}
		if s.Else != nil {
			return stmtExits(s.Else, depth, label)
		}
	case *ast.LabeledStmt:
		return stmtExits(s.Stmt, depth, label)
	case *ast.ForStmt:
		return stmtsExit(s.Body.List, depth+1, label)
	case *ast.RangeStmt:
		return stmtsExit(s.Body.List, depth+1, label)
	case *ast.SwitchStmt:
		return caseBodiesExit(s.Body, depth+1, label)
	case *ast.TypeSwitchStmt:
		return caseBodiesExit(s.Body, depth+1, label)
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if comm, ok := cc.(*ast.CommClause); ok {
				if stmtsExit(comm.Body, depth+1, label) {
					return true
				}
			}
		}
	}
	return false
}

func caseBodiesExit(body *ast.BlockStmt, depth int, label string) bool {
	for _, cc := range body.List {
		if c, ok := cc.(*ast.CaseClause); ok {
			if stmtsExit(c.Body, depth, label) {
				return true
			}
		}
	}
	return false
}

// loopHasSignal reports whether the loop body consults any shutdown
// signal: a select, a channel receive, a range over a channel, a
// ctx.Done()/ctx.Err() call, or a sync Wait.
func loopHasSignal(pkg *Package, body *ast.BlockStmt, ownLit *ast.FuncLit) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			if x != ownLit {
				return false
			}
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
					switch fn.Pkg().Path() {
					case "context":
						if fn.Name() == "Done" || fn.Name() == "Err" {
							found = true
						}
					case "sync":
						if fn.Name() == "Wait" {
							found = true
						}
					}
				}
			}
		}
		return !found
	})
	return found
}
