package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoNakedPanic reserves panic for provably-unreachable states. A library
// panic crosses every API boundary above it — in this repo that includes
// the resident HTTP service, where a panicking model call would kill a
// request (or, on a worker goroutine, the whole daemon). Call sites that
// are genuinely unreachable (guarded by validation, exhaustive switches)
// keep their panic but must say so with
//
//	//yaplint:allow no-naked-panic <why it is unreachable>
//
// init functions are exempt: failing fast at startup is panic's job.
var NoNakedPanic = &Analyzer{
	Name: "no-naked-panic",
	Doc:  "panic outside init/tests requires an allow directive",
	Run:  runNoNakedPanic,
}

func runNoNakedPanic(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		if strings.HasSuffix(pkg.position(file).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fn.Name.Name == "init" && fn.Recv == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				out = append(out, pkg.finding(call, "no-naked-panic",
					"panic in library code; return an error, or annotate a provably-unreachable state with //yaplint:allow no-naked-panic"))
				return true
			})
		}
	}
	return out
}
