package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// deterministicPaths root the package trees whose behaviour must be a
// pure function of their seed/inputs: the Monte-Carlo simulator, its
// random substrate, the analytic core whose CanonicalHash backs the
// service cache, the fault injector whose whole point is replayable
// chaos — an injected fault schedule that drifted between runs would
// make failures unreproducible — and the distributed sharding layer,
// whose bit-identical-merge contract dies the moment a plan or merge
// depends on wall clock or ambient randomness. (The paper's validation
// methodology depends on seeded replays being bit-identical.)
// Subpackages inherit the constraint.
//
// yap/internal/jobs is in the tree because its crash-resume contract is a
// determinism claim: a WAL replay that consulted the wall clock or
// ambient randomness could steer a resumed job away from the tallies the
// uninterrupted run would have produced. Timestamps there are telemetry
// from an injected Clock, never control flow.
//
// yap/internal/converge is in the tree because the sequential early-stop
// rule IS a determinism claim: same seed + same epsilon must stop at the
// same sample index on every run, worker count and crash/resume path. A
// stop decision influenced by wall clock or ambient randomness would
// silently change which samples a result contains.
//
// yap/internal/replica is in the tree because failover correctness is
// proved by bit-identical resume: a new leader replaying the replicated
// WAL must reach exactly the tallies the dead leader would have. Election
// timing flows through an injected clock; a stray wall-clock read or
// ambient-random tiebreak would make failovers unreplayable.
//
// yap/internal/layout is in the tree because CanonicalBytes feeds
// core.CanonicalHash (the service cache / dist shard key) and Grids fixes
// the per-region sample-draw order of both MC kernels; either drifting
// between runs would break cache identity and bit-identical merges.
//
// yap/internal/fleetcache is in the tree because rendezvous owner
// placement (Owner) must agree byte-for-byte across every fleet member —
// an ambient-random or clock-flavoured tiebreak would scatter a key's
// owner across the fleet and silently void the ≈1-compute-per-key
// contract the cache drill pins. Time only enters through the injected
// breaker Clock and context deadlines, never a direct wall-clock read.
var deterministicPaths = []string{
	"yap/internal/sim",
	"yap/internal/randx",
	"yap/internal/core",
	"yap/internal/faultinject",
	"yap/internal/dist",
	"yap/internal/jobs",
	"yap/internal/converge",
	"yap/internal/replica",
	"yap/internal/layout",
	"yap/internal/fleetcache",
}

// inTree reports whether path is root itself or a subpackage of it.
func inTree(path, root string) bool {
	return path == root || strings.HasPrefix(path, root+"/")
}

func inAnyTree(path string, roots []string) bool {
	for _, root := range roots {
		if inTree(path, root) {
			return true
		}
	}
	return false
}

// randConstructors are the math/rand(/v2) top-level functions that build an
// explicitly-seeded generator rather than sampling the shared global one.
// Explicit sources are exactly how seeded determinism is implemented, so
// they stay legal.
var randConstructors = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewSource":  true,
	"NewZipf":    true,
}

// Determinism forbids ambient-entropy reads in the deterministic packages:
// global math/rand sampling (the shared source is seeded from runtime
// entropy), wall-clock reads (time.Now/Since), and accumulation inside a
// map range (Go randomizes map iteration order, so order-dependent
// accumulation — float sums are order-dependent — varies run to run).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid global rand, wall-clock reads and map-iteration-order dependence in seeded packages",
	Run:  runDeterminism,
}

func runDeterminism(pkg *Package) []Finding {
	if !inAnyTree(pkg.ImportPath, deterministicPaths) {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if f := checkDeterministicCall(pkg, n); f != nil {
					out = append(out, *f)
				}
			case *ast.RangeStmt:
				if f := checkMapRange(pkg, n); f != nil {
					out = append(out, *f)
				}
				out = append(out, checkMapRangeAccumulation(pkg, n)...)
			}
			return true
		})
	}
	return out
}

// checkDeterministicCall flags global math/rand sampling and wall-clock
// reads.
func checkDeterministicCall(pkg *Package, call *ast.CallExpr) *Finding {
	path, name := calleePackageFunc(pkg, call)
	switch path {
	case "math/rand", "math/rand/v2":
		if randConstructors[name] {
			return nil
		}
		f := pkg.finding(call, "determinism",
			"call to global %s.%s breaks seeded reproducibility; draw from an explicit *randx.Source", path, name)
		return &f
	case "time":
		if name == "Now" || name == "Since" || name == "Until" {
			f := pkg.finding(call, "determinism",
				"wall-clock read time.%s in a deterministic package; inject the time or annotate telemetry with //yaplint:allow determinism", name)
			return &f
		}
	}
	return nil
}

// checkMapRange flags any `range` over a map in the deterministic tree:
// Go randomizes map iteration order, so every observable effect of the
// loop body — accumulation, first-match selection, log emission — can
// differ run to run. Order-independent bodies (pure per-key counting into
// another map, say) are legitimate and carry an allow directive saying why.
func checkMapRange(pkg *Package, rng *ast.RangeStmt) *Finding {
	tv, ok := pkg.Info.Types[rng.X]
	if !ok {
		return nil
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return nil
	}
	f := pkg.finding(rng, "determinism",
		"range over a map iterates in randomized order in a deterministic package; iterate sorted keys (or justify order-independence with //yaplint:allow determinism)")
	return &f
}

// checkMapRangeAccumulation flags order-dependent accumulation (compound
// assignment or append) inside a `range` over a map.
func checkMapRangeAccumulation(pkg *Package, rng *ast.RangeStmt) []Finding {
	tv, ok := pkg.Info.Types[rng.X]
	if !ok {
		return nil
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return nil
	}
	var out []Finding
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if isCompoundAssign(n) {
				out = append(out, pkg.finding(n, "determinism",
					"accumulation inside a map range depends on map iteration order; iterate sorted keys"))
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && isBuiltin(pkg, id) {
				out = append(out, pkg.finding(n, "determinism",
					"append inside a map range depends on map iteration order; iterate sorted keys"))
			}
		}
		return true
	})
	return out
}

// isCompoundAssign reports whether the assignment is `x op= y` (any op).
func isCompoundAssign(a *ast.AssignStmt) bool {
	switch a.Tok.String() {
	case "=", ":=":
		return false
	}
	return true
}

// isBuiltin reports whether the identifier resolves to a universe-scope
// builtin (rather than a user function shadowing the name).
func isBuiltin(pkg *Package, id *ast.Ident) bool {
	obj := pkg.Info.Uses[id]
	if obj == nil {
		return false
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// calleePackageFunc resolves a call's callee to (package path, function
// name) when it is a direct package-level function call; otherwise returns
// empty strings.
func calleePackageFunc(pkg *Package, call *ast.CallExpr) (path, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	obj := pkg.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	// Methods (receiver present) are not package-level functions.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}
