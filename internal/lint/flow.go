package lint

// The third layer of the flow-aware core: a small abstract interpreter
// over the per-function CFGs. The domain is a must-state — the set of
// mutex classes provably held (with read/write mode) plus, for waldur,
// whether a durable append or record-rank guard dominates the current
// point. Must-analysis means the join at control-flow merges is
// intersection: a fact survives only if it holds on every incoming path,
// so the analyzers never claim protection that a real execution could
// lack. On top of the per-function walk sits one interprocedural fixpoint:
// entryHeld, the set of classes held at every call site of a function,
// which is what lets helpers like appendLocked or trip — documented
// "callers hold mu" — check without annotations.

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// Lock modes. Write subsumes read.
const (
	modeRead  = 1
	modeWrite = 2
)

// lockClass identifies one mutex across the module: a struct field
// ("yap/internal/jobs.Manager.mu"), a package-level variable, or a local.
type lockClass struct {
	id      string // canonical identity
	display string // short form for messages, e.g. "jobs.Manager.mu"
}

// flowState is the abstract state at one program point. A nil *flowState
// denotes an unreachable point (top), the identity of the join.
type flowState struct {
	held      map[string]int // lock class id -> modeRead|modeWrite
	protected bool           // waldur: durable append or rank guard dominates
}

func (s *flowState) clone() *flowState {
	c := &flowState{protected: s.protected}
	if len(s.held) > 0 {
		c.held = make(map[string]int, len(s.held))
		for k, v := range s.held {
			c.held[k] = v
		}
	}
	return c
}

// join intersects two states (must-analysis). Either side nil (unreachable)
// yields the other.
func join(a, b *flowState) *flowState {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := &flowState{protected: a.protected && b.protected}
	for k, va := range a.held {
		if vb, ok := b.held[k]; ok {
			m := va
			if vb < m {
				m = vb
			}
			if out.held == nil {
				out.held = make(map[string]int)
			}
			out.held[k] = m
		}
	}
	return out
}

func equalStates(a, b *flowState) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.protected != b.protected || len(a.held) != len(b.held) {
		return false
	}
	for k, v := range a.held {
		if b.held[k] != v {
			return false
		}
	}
	return true
}

// flowEvent is one fine-grained event inside a block, in evaluation order.
type flowEvent struct {
	n        ast.Node
	deferred bool // the event is the call of a defer statement
}

// expandNode flattens one coarse CFG node into evaluation-ordered events
// (children before parents, matching Go's evaluate-args-then-call order).
// Function literals are opaque: their bodies are separate CFG nodes.
func expandNode(dst []flowEvent, cn cfgNode) []flowEvent {
	root := cn.n
	if rs, ok := root.(*ast.RangeStmt); ok {
		// Only the range operand evaluates here; the body is its own block.
		if rs.X != nil {
			dst = expandExpr(dst, rs.X)
		}
		return dst
	}
	if gs, ok := root.(*ast.GoStmt); ok {
		// The spawned call runs elsewhere; only the statement itself is an
		// event (for analyzers that watch spawns).
		return append(dst, flowEvent{n: gs})
	}
	dst = expandExpr(dst, root)
	if cn.deferred && len(dst) > 0 {
		// The root (emitted last in postorder) is the deferred call itself;
		// its operands still evaluate immediately.
		dst[len(dst)-1].deferred = true
	}
	return dst
}

func expandExpr(dst []flowEvent, n ast.Node) []flowEvent {
	var stack []ast.Node
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			switch top.(type) {
			case *ast.CallExpr, *ast.SelectorExpr, *ast.AssignStmt,
				*ast.IncDecStmt, *ast.UnaryExpr, *ast.BinaryExpr,
				*ast.SendStmt, *ast.GoStmt:
				dst = append(dst, flowEvent{n: top})
			}
			return true
		}
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if gs, ok := x.(*ast.GoStmt); ok {
			dst = append(dst, flowEvent{n: gs})
			return false
		}
		stack = append(stack, x)
		return true
	})
	return dst
}

// lock operations
type lockOp int

const (
	opNone lockOp = iota
	opLock
	opRLock
	opUnlock
	opRUnlock
)

// flowCore ties the CFGs and call graph together with the interprocedural
// summaries the analyzers share. Built once per Run via Module.
type flowCore struct {
	pkgs  []*Package
	graph *callGraph

	// entryHeld[n] = lock classes (id -> mode) held at every call site of
	// n; the optimistic least fixpoint described in the package comment.
	entryHeld map[*cgNode]map[string]int
	// entryOwned[n] reports that every call site of n passes a receiver
	// still private to its constructor — accesses inside n are unpublished.
	entryOwned map[*cgNode]bool
	// ownedVars[n] = local objects of n initialized from composite
	// literals (values not yet escaped; lock-free access is safe).
	ownedVars map[*cgNode]map[types.Object]bool
	// reachesSync[n]: n transitively performs a *.Sync() (fsync) call.
	reachesSync map[*cgNode]bool
	// acquires[n] = lock classes n may acquire, transitively (non-go).
	acquires map[*cgNode]map[string]lockClass
	// classes indexes every lock class seen anywhere in the module.
	classes map[string]lockClass
}

// newFlowCore builds the shared analysis state for one module.
func newFlowCore(pkgs []*Package) *flowCore {
	fc := &flowCore{
		pkgs:        pkgs,
		graph:       buildCallGraph(pkgs),
		entryHeld:   map[*cgNode]map[string]int{},
		entryOwned:  map[*cgNode]bool{},
		ownedVars:   map[*cgNode]map[types.Object]bool{},
		reachesSync: map[*cgNode]bool{},
		acquires:    map[*cgNode]map[string]lockClass{},
		classes:     map[string]lockClass{},
	}
	for _, n := range fc.graph.nodes {
		fc.ownedVars[n] = collectOwnedVars(n)
	}
	fc.markOwnedEdges()
	fc.solveEntryHeld()
	fc.solveSummaries()
	return fc
}

// collectOwnedVars finds locals bound to freshly constructed values:
// `x := T{...}`, `x := &T{...}`, `x := new(T)` and `var x T`. Such values
// are private to the function until stored or returned, so unlocked field
// access through them is safe (the constructor exemption).
func collectOwnedVars(n *cgNode) map[types.Object]bool {
	owned := map[types.Object]bool{}
	body := n.body()
	if body == nil {
		return owned
	}
	record := func(id *ast.Ident) {
		if obj := n.pkg.Info.Defs[id]; obj != nil {
			owned[obj] = true
		}
	}
	fresh := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
		switch e := e.(type) {
		case *ast.CompositeLit:
			return true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
				if _, isBuiltin := n.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
		return false
	}
	ast.Inspect(body, func(x ast.Node) bool {
		if fl, ok := x.(*ast.FuncLit); ok && fl != n.lit {
			return false
		}
		switch s := x.(type) {
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE || len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && fresh(s.Rhs[i]) {
					record(id)
				}
			}
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == 0 {
					for _, id := range vs.Names {
						record(id) // zero value, trivially fresh
					}
					continue
				}
				if len(vs.Values) == len(vs.Names) {
					for i, id := range vs.Names {
						if fresh(vs.Values[i]) {
							record(id)
						}
					}
				}
			}
		}
		return true
	})
	return owned
}

// markOwnedEdges flags call edges whose receiver base is an owned local,
// and records the receiver base object so ownership can later extend
// through entry-owned callers (Open -> apply -> noteID).
func (fc *flowCore) markOwnedEdges() {
	for _, n := range fc.graph.nodes {
		for _, e := range n.out {
			sel, ok := ast.Unparen(e.call.Fun).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if base := baseIdent(sel.X); base != nil {
				if obj := n.pkg.Info.Uses[base]; obj != nil {
					e.recvBase = obj
					if fc.ownedVars[n][obj] {
						e.ownedRecv = true
					}
				}
			}
		}
	}
}

// edgeOwned reports whether a call site's receiver is provably
// unpublished: an owned local of the caller, or the caller's own receiver
// when every path into the caller is itself owned.
func (fc *flowCore) edgeOwned(e *cgEdge) bool {
	if e.ownedRecv {
		return true
	}
	return e.recvBase != nil && e.caller.recvObj != nil &&
		e.recvBase == e.caller.recvObj && fc.entryOwned[e.caller]
}

// baseIdent walks a selector/index/star chain down to its root identifier.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// solveEntryHeld iterates the interprocedural least fixpoint: run every
// function's local must-walk under the current entry assumption, snapshot
// the held set at each call site, then recompute each function's entry as
// the intersection over its sites. Bottom-up iteration from the empty set
// only ever grows the assumption, so it terminates and never credits a
// lock no caller actually holds.
func (fc *flowCore) solveEntryHeld() {
	for {
		for _, n := range fc.graph.nodes {
			fc.visitFlow(n, fc.entryState(n), func(ev flowEvent, st *flowState) {
				call, ok := ev.n.(*ast.CallExpr)
				if !ok {
					return
				}
				if e := fc.graph.byCall[call]; e != nil {
					e.held = make(map[string]int, len(st.held))
					for k, v := range st.held {
						e.held[k] = v
					}
				}
			})
		}
		changed := false
		for _, n := range fc.graph.nodes {
			entry, owned := fc.mergeSites(n)
			if owned != fc.entryOwned[n] || !sameHeld(entry, fc.entryHeld[n]) {
				changed = true
			}
			fc.entryHeld[n] = entry
			fc.entryOwned[n] = owned
		}
		if !changed {
			return
		}
	}
}

// entryState builds the flow entry for one node from the current
// interprocedural assumption.
func (fc *flowCore) entryState(n *cgNode) *flowState {
	st := &flowState{}
	if eh := fc.entryHeld[n]; len(eh) > 0 {
		st.held = make(map[string]int, len(eh))
		for k, v := range eh {
			st.held[k] = v
		}
	}
	return st
}

// mergeSites intersects the held sets of every call site of n. Sites
// spawned with `go` contribute nothing held; sites through an owned
// receiver are neutral (they cannot weaken the intersection); a node whose
// every site is owned is itself owned.
func (fc *flowCore) mergeSites(n *cgNode) (map[string]int, bool) {
	if len(n.in) == 0 {
		return nil, false
	}
	var acc map[string]int
	first := true
	constraining := 0
	for _, e := range n.in {
		if e.goCall {
			return nil, false // a goroutine entry holds nothing
		}
		if fc.edgeOwned(e) {
			continue
		}
		constraining++
		if first {
			acc = make(map[string]int, len(e.held))
			for k, v := range e.held {
				acc[k] = v
			}
			first = false
			continue
		}
		for k, v := range acc {
			if hv, ok := e.held[k]; !ok {
				delete(acc, k)
			} else if hv < v {
				acc[k] = hv
			}
		}
	}
	if constraining == 0 {
		return nil, true // every site passes an unpublished receiver
	}
	return acc, false
}

func sameHeld(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// solveSummaries computes the transitive union facts: reachesSync and
// acquires. Both exclude `go` edges — work done on another goroutine
// neither fsyncs on this path nor orders this path's lock acquisitions.
func (fc *flowCore) solveSummaries() {
	for _, n := range fc.graph.nodes {
		acq := map[string]lockClass{}
		body := n.body()
		if body != nil {
			ast.Inspect(body, func(x ast.Node) bool {
				if fl, ok := x.(*ast.FuncLit); ok && fl != n.lit {
					return false
				}
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if cls, op := fc.lockOpOf(n.pkg, call); op == opLock || op == opRLock {
					acq[cls.id] = cls
				}
				if isSyncCall(n.pkg, call) {
					fc.reachesSync[n] = true
				}
				return true
			})
		}
		fc.acquires[n] = acq
	}
	for changed := true; changed; {
		changed = false
		for _, n := range fc.graph.nodes {
			for _, e := range n.out {
				if e.goCall {
					continue
				}
				if fc.reachesSync[e.callee] && !fc.reachesSync[n] {
					fc.reachesSync[n] = true
					changed = true
				}
				for id, cls := range fc.acquires[e.callee] {
					if _, ok := fc.acquires[n][id]; !ok {
						fc.acquires[n][id] = cls
						changed = true
					}
				}
			}
		}
	}
}

// isSyncCall reports a call to a method named Sync (os.File fsync and the
// WAL helpers layered on it).
func isSyncCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Sync" {
		return false
	}
	_, isFunc := pkg.Info.Uses[sel.Sel].(*types.Func)
	return isFunc
}

// lockOpOf classifies a call as a mutex operation and identifies the lock.
func (fc *flowCore) lockOpOf(pkg *Package, call *ast.CallExpr) (lockClass, lockOp) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockClass{}, opNone
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock":
		op = opLock
	case "RLock":
		op = opRLock
	case "Unlock":
		op = opUnlock
	case "RUnlock":
		op = opRUnlock
	default:
		return lockClass{}, opNone
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockClass{}, opNone
	}
	cls, ok := fc.lockClassOf(pkg, sel.X)
	if !ok {
		return lockClass{}, opNone
	}
	fc.classes[cls.id] = cls
	return cls, op
}

// lockClassOf canonicalizes the expression a mutex method is called on.
func (fc *flowCore) lockClassOf(pkg *Package, e ast.Expr) (lockClass, bool) {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		// m.mu — a mutex field: identity is (owner type, field name).
		if s := pkg.Info.Selections[x]; s != nil && s.Kind() == types.FieldVal {
			if owner := namedOf(s.Recv()); owner != nil {
				return fieldClass(owner, s.Obj().Name()), true
			}
		}
		// pkgname.Var — a package-level mutex accessed cross-package.
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil {
			return varClass(v), true
		}
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil {
			obj = pkg.Info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok {
			// A named struct that embeds sync.Mutex: calling c.Lock() locks
			// the embedded field — identity is (struct type, embedded name).
			if owner := namedOf(v.Type()); owner != nil && !isSyncLockType(owner) {
				if fname, ok := embeddedMutexField(owner); ok {
					return fieldClass(owner, fname), true
				}
			}
			return varClass(v), true
		}
	}
	return lockClass{}, false
}

// fieldClass builds the class of a mutex that is a struct field.
func fieldClass(owner *types.Named, field string) lockClass {
	pkgPath, pkgBase := "", ""
	if p := owner.Obj().Pkg(); p != nil {
		pkgPath, pkgBase = p.Path(), path.Base(p.Path())
	}
	return lockClass{
		id:      pkgPath + "." + owner.Obj().Name() + "." + field,
		display: pkgBase + "." + owner.Obj().Name() + "." + field,
	}
}

// varClass builds the class of a mutex variable (package-level or local;
// locals are distinguished by their definition position).
func varClass(v *types.Var) lockClass {
	pkgPath, pkgBase := "", ""
	if p := v.Pkg(); p != nil {
		pkgPath, pkgBase = p.Path(), path.Base(p.Path())
	}
	id := pkgPath + "." + v.Name()
	if v.Parent() != nil && v.Pkg() != nil && v.Parent() != v.Pkg().Scope() {
		// Local mutex: pin identity to the declaration.
		id += "@" + itoa(int(v.Pos()))
	}
	return lockClass{id: id, display: pkgBase + "." + v.Name()}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

// namedOf strips pointers down to a named type.
func namedOf(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		default:
			return nil
		}
	}
}

func isSyncLockType(n *types.Named) bool {
	p := n.Obj().Pkg()
	if p == nil || p.Path() != "sync" {
		return false
	}
	name := n.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// embeddedMutexField finds an embedded sync.Mutex/RWMutex field.
func embeddedMutexField(owner *types.Named) (string, bool) {
	st, ok := owner.Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Embedded() {
			continue
		}
		if n := namedOf(f.Type()); n != nil && isSyncLockType(n) {
			return f.Name(), true
		}
	}
	return "", false
}

// transfer applies one event's effect to the state in place.
func (fc *flowCore) transfer(n *cgNode, st *flowState, ev flowEvent) {
	switch x := ev.n.(type) {
	case *ast.CallExpr:
		cls, op := fc.lockOpOf(n.pkg, x)
		switch op {
		case opLock:
			if st.held == nil {
				st.held = make(map[string]int)
			}
			st.held[cls.id] = modeWrite
		case opRLock:
			if st.held == nil {
				st.held = make(map[string]int)
			}
			if st.held[cls.id] < modeRead {
				st.held[cls.id] = modeRead
			}
		case opUnlock, opRUnlock:
			if !ev.deferred {
				// A deferred unlock releases only at return; the lock stays
				// held for the remainder of the body.
				delete(st.held, cls.id)
			}
		case opNone:
			if ev.deferred {
				// A deferred call runs at return, after everything else in
				// the body — it cannot dominate anything.
				break
			}
			if isSyncCall(n.pkg, x) {
				st.protected = true
			} else if e := fc.graph.byCall[x]; e != nil && !e.goCall && fc.reachesSync[e.callee] {
				st.protected = true
			}
		}
	case *ast.BinaryExpr:
		if isComparison(x.Op) && (mentionsRank(x.X) || mentionsRank(x.Y)) {
			st.protected = true
		}
	}
}

func isComparison(op token.Token) bool {
	switch op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// mentionsRank reports whether an expression inspects a record's ordering
// rank: a call to a method named rank/Rank, or a Completed/Seq field.
func mentionsRank(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(x ast.Node) bool {
		if found {
			return false
		}
		sel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "rank", "Rank", "Completed", "Seq":
			found = true
			return false
		}
		return true
	})
	return found
}

// visitFlow runs the must-analysis to fixpoint over one function's CFG and
// then replays every reachable block once, calling visit with the state in
// effect immediately BEFORE each event.
func (fc *flowCore) visitFlow(n *cgNode, entry *flowState, visit func(ev flowEvent, st *flowState)) {
	g := n.cfg
	if g == nil || len(g.blocks) == 0 {
		return
	}
	in := make(map[*block]*flowState, len(g.blocks))
	in[g.entry] = entry
	work := []*block{g.entry}
	queued := map[*block]bool{g.entry: true}
	events := make(map[*block][]flowEvent, len(g.blocks))
	evOf := func(b *block) []flowEvent {
		evs, ok := events[b]
		if !ok {
			for _, cn := range b.nodes {
				evs = expandNode(evs, cn)
			}
			events[b] = evs
		}
		return evs
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		st := in[b]
		if st == nil {
			continue
		}
		out := st.clone()
		for _, ev := range evOf(b) {
			fc.transfer(n, out, ev)
		}
		for _, succ := range b.succs {
			merged := join(in[succ], out)
			if !equalStates(merged, in[succ]) {
				in[succ] = merged.clone()
				if !queued[succ] {
					queued[succ] = true
					work = append(work, succ)
				}
			}
		}
	}
	if visit == nil {
		return
	}
	for _, b := range g.blocks {
		st := in[b]
		if st == nil {
			continue
		}
		cur := st.clone()
		for _, ev := range evOf(b) {
			visit(ev, cur)
			fc.transfer(n, cur, ev)
		}
	}
}

// heldMode reports the mode of cls in a state (0 when not held).
func heldMode(st *flowState, id string) int {
	if st == nil {
		return 0
	}
	return st.held[id]
}

// sortedClassIDs renders a held set deterministically for messages.
func sortedClassIDs(held map[string]int, classes map[string]lockClass) []string {
	out := make([]string, 0, len(held))
	for id := range held {
		if c, ok := classes[id]; ok {
			out = append(out, c.display)
		} else {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// displayOf renders one class id.
func (fc *flowCore) displayOf(id string) string {
	if c, ok := fc.classes[id]; ok {
		return c.display
	}
	if i := strings.LastIndex(id, "/"); i >= 0 {
		return id[i+1:]
	}
	return id
}
