package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// LoadPackages lists, parses and type-checks the packages matched by the
// given patterns (e.g. "./...") relative to dir. Dependencies are imported
// from compiler export data produced by `go list -export`, so the whole
// load stays stdlib-only and needs no pre-installed artifacts beyond the
// build cache.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var roots []*listedPackage
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			roots = append(roots, lp)
		}
	}
	var pkgs []*Package
	for _, lp := range roots {
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := typecheck(lp.ImportPath, lp.Dir, lp.GoFiles, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs `go list -export -deps -json` and decodes the package stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %w\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var listed []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// typecheck parses the named files of one package and type-checks them
// against the export-data map. importPath becomes the package's path, which
// lets tests check a testdata directory as if it lived at a real path.
func typecheck(importPath, dir string, goFiles []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", path, err)
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		allow:      buildAllow(fset, files),
	}, nil
}
