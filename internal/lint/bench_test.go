package lint

import "testing"

// BenchmarkLintLoad measures package loading: `go list -export` for the
// dependency export data plus parsing and type-checking. This is the
// dominant fixed cost of a yaplint run.
func BenchmarkLintLoad(b *testing.B) {
	root := moduleRoot()
	for i := 0; i < b.N; i++ {
		pkgs, err := LoadPackages(root, "./internal/jobs/", "./internal/resilience/")
		if err != nil {
			b.Fatalf("LoadPackages: %v", err)
		}
		if len(pkgs) == 0 {
			b.Fatal("no packages loaded")
		}
	}
}

// BenchmarkLintAnalyze measures pure analysis over the whole module with
// loading amortized out: every iteration rebuilds the flow core (CFGs,
// call graph, interprocedural fixpoints) and runs all nine analyzers.
func BenchmarkLintAnalyze(b *testing.B) {
	pkgs, err := LoadPackages(moduleRoot(), "./...")
	if err != nil {
		b.Fatalf("LoadPackages: %v", err)
	}
	analyzers := All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if findings := Run(pkgs, analyzers); len(findings) != 0 {
			b.Fatalf("expected a clean repo, got %d findings", len(findings))
		}
	}
}
