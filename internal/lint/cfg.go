package lint

// This file is the first layer of the flow-aware analysis core: a
// per-function control-flow graph over go/ast. Blocks hold the statements
// and control expressions of one straight-line run in evaluation order;
// edges follow Go's structured control flow (if/for/range/switch/select,
// break/continue with labels, goto, fallthrough). Precision goals are
// those of a linter, not a compiler: the graph must be sound enough that
// a must-analysis over it (see flow.go) never claims a fact that can be
// false on a real execution path through the function.

import (
	"go/ast"
	"go/token"
)

// block is one straight-line run of the CFG. nodes are statements and
// control expressions in evaluation order; flow.go expands each into the
// fine-grained events (calls, accesses, comparisons) the analyzers watch.
type block struct {
	nodes []cfgNode
	succs []*block
	preds []*block
}

// cfgNode is one coarse node of a block: a statement or a control
// expression, with a flag for nodes evaluated under a defer (a deferred
// Unlock holds to function end, so the lock walker must not clear it).
type cfgNode struct {
	n        ast.Node
	deferred bool
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *block
	blocks []*block
}

// buildCFG constructs the CFG of one function body. A nil body (extern
// declarations) yields an empty single-block graph.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{g: &funcCFG{}, labels: map[string]*block{}}
	b.g.entry = b.newBlock()
	b.cur = b.g.entry
	if body != nil {
		b.walkStmts(body.List)
	}
	return b.g
}

// frame is one enclosing breakable/continuable construct.
type frame struct {
	label      string
	breakTo    *block
	continueTo *block // nil for switch/select
}

type cfgBuilder struct {
	g      *funcCFG
	cur    *block
	frames []frame
	labels map[string]*block // label name -> target block (goto / labeled stmt)
	// pendingLabel is the label of an immediately preceding LabeledStmt; a
	// loop or switch that begins next consumes it for labeled break/continue.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *block {
	bl := &block{}
	b.g.blocks = append(b.g.blocks, bl)
	return bl
}

func (b *cfgBuilder) edge(from, to *block) {
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.nodes = append(b.cur.nodes, cfgNode{n: n})
	}
}

// terminate ends the current block without successors (return/branch) and
// resumes building in a fresh unreachable block, so trailing dead code
// never merges its state back into live paths.
func (b *cfgBuilder) terminate() {
	b.cur = b.newBlock()
}

// labelBlock returns (creating on demand) the block a label names, so
// forward and backward gotos both resolve.
func (b *cfgBuilder) labelBlock(name string) *block {
	if bl, ok := b.labels[name]; ok {
		return bl
	}
	bl := b.newBlock()
	b.labels[name] = bl
	return bl
}

// takeLabel consumes the pending statement label for the construct that
// is about to open.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) walkStmts(list []ast.Stmt) {
	for _, s := range list {
		b.walk(s)
	}
}

func (b *cfgBuilder) walk(s ast.Stmt) {
	if s == nil {
		return
	}
	pending := b.pendingLabel
	if _, isLabeled := s.(*ast.LabeledStmt); !isLabeled {
		switch s.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// the construct consumes it below via takeLabel
		default:
			b.pendingLabel = ""
		}
	}
	_ = pending

	switch s := s.(type) {
	case *ast.BlockStmt:
		b.walkStmts(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.walk(s.Stmt)

	case *ast.IfStmt:
		if s.Init != nil {
			b.walk(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		then := b.newBlock()
		after := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.walk(s.Body)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.walk(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.walk(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(b.cur, after) // condition false
		}
		b.edge(b.cur, body)
		b.frames = append(b.frames, frame{label: label, breakTo: after, continueTo: post})
		b.cur = body
		b.walk(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, post)
		b.cur = post
		if s.Post != nil {
			b.walk(s.Post)
		}
		b.edge(b.cur, head)
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		b.add(s)             // the range expression + per-iteration key/value binding
		b.edge(b.cur, after) // range exhausted (possibly immediately)
		b.edge(b.cur, body)
		b.frames = append(b.frames, frame{label: label, breakTo: after, continueTo: head})
		b.cur = body
		b.walk(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.walk(s.Init)
		}
		b.add(s.Tag)
		b.walkCases(label, s.Body, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.walk(s.Init)
		}
		b.add(s.Assign)
		b.walkCases(label, s.Body, nil)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock()
		b.frames = append(b.frames, frame{label: label, breakTo: after})
		hasClause := false
		for _, cc := range s.Body.List {
			comm, ok := cc.(*ast.CommClause)
			if !ok {
				continue
			}
			hasClause = true
			cb := b.newBlock()
			b.edge(head, cb)
			b.cur = cb
			if comm.Comm != nil {
				b.walk(comm.Comm)
			}
			b.walkStmts(comm.Body)
			b.edge(b.cur, after)
		}
		b.frames = b.frames[:len(b.frames)-1]
		if !hasClause {
			// `select {}` blocks forever; after is unreachable, which the
			// must-analysis treats as top.
			_ = hasClause
		}
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.terminate()

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findFrame(s.Label, false); t != nil {
				b.edge(b.cur, t)
			}
			b.terminate()
		case token.CONTINUE:
			if t := b.findFrame(s.Label, true); t != nil {
				b.edge(b.cur, t)
			}
			b.terminate()
		case token.GOTO:
			b.edge(b.cur, b.labelBlock(s.Label.Name))
			b.terminate()
		case token.FALLTHROUGH:
			// walkCases wires the edge to the next case body.
		}

	case *ast.DeferStmt:
		b.cur.nodes = append(b.cur.nodes, cfgNode{n: s.Call, deferred: true})

	default:
		// Assign, IncDec, Expr, Send, Decl, Go, Empty: straight-line.
		b.add(s)
	}
}

// walkCases builds the clause blocks of a switch/type-switch body.
func (b *cfgBuilder) walkCases(label string, body *ast.BlockStmt, _ *block) {
	head := b.cur
	after := b.newBlock()
	var clauses []*ast.CaseClause
	for _, cc := range body.List {
		if c, ok := cc.(*ast.CaseClause); ok {
			clauses = append(clauses, c)
		}
	}
	bodies := make([]*block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		bodies[i] = b.newBlock()
		if c.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.frames = append(b.frames, frame{label: label, breakTo: after})
	for i, c := range clauses {
		b.edge(head, bodies[i])
		b.cur = bodies[i]
		for _, e := range c.List {
			b.add(e)
		}
		b.walkStmts(c.Body)
		if n := len(c.Body); n > 0 {
			if br, ok := c.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(bodies) {
				b.edge(b.cur, bodies[i+1])
				b.terminate()
				continue
			}
		}
		b.edge(b.cur, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// findFrame resolves a break/continue target. An unresolvable labeled
// branch (malformed code) terminates the path conservatively.
func (b *cfgBuilder) findFrame(label *ast.Ident, needContinue bool) *block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if needContinue && f.continueTo == nil {
			continue
		}
		if label != nil && f.label != label.Name {
			continue
		}
		if needContinue {
			return f.continueTo
		}
		return f.breakTo
	}
	return nil
}
