package lint

// waldur: WAL durability ordering for internal/jobs. A job state
// transition in memory (a write to a State-typed field, or to Job's
// Completed counter) is only crash-safe if, on every path reaching it,
// either
//
//   - a durable append already ran — a call that transitively reaches an
//     fsync (*.Sync()), i.e. the WAL append the transition is recorded in —
//     so a crash after the in-memory apply replays the same transition; or
//   - the record's rank/Completed/Seq was compared first, the monotone
//     apply guard that makes replay idempotent.
//
// The must-walk computes "protected" as a dominance fact: it is set by
// durable-append calls and rank comparisons and intersected at merges, so
// one unprotected path through an apply site is enough to report. The
// analyzer is scoped to the jobs tree — that is where PR 5/6 established
// the ordering contract this rule pins.

import (
	"go/ast"
	"go/types"
	"strings"
)

// WALDurability reports in-memory state transitions not dominated by a
// durable WAL append or a record-rank guard.
var WALDurability = &Analyzer{
	Name:      "waldur",
	Doc:       "in internal/jobs, state-transition application must be dominated by a durable append+fsync or a record-rank comparison",
	RunModule: runWALDurability,
}

// waldurTree scopes the rule to the jobs package (and its golden twin).
func inWALDurTree(importPath string) bool {
	return importPath == "yap/internal/jobs" || strings.HasSuffix(importPath, "/internal/jobs")
}

func runWALDurability(mod *Module) []Finding {
	fc := mod.flow()
	var findings []Finding
	for _, n := range fc.graph.nodes {
		if !inWALDurTree(n.pkg.ImportPath) {
			continue
		}
		n := n
		fc.visitFlow(n, fc.entryState(n), func(ev flowEvent, st *flowState) {
			var targets []ast.Expr
			switch x := ev.n.(type) {
			case *ast.AssignStmt:
				targets = x.Lhs
			case *ast.IncDecStmt:
				targets = []ast.Expr{x.X}
			default:
				return
			}
			if st.protected {
				return
			}
			for _, t := range targets {
				sel, ok := ast.Unparen(t).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				kind := transitionKind(n.pkg, sel)
				if kind == "" {
					continue
				}
				findings = append(findings, n.pkg.finding(ev.n, "waldur",
					"%s applies a state transition (%s) with no durable WAL append (fsync) or record-rank guard dominating this path — a crash here loses or double-applies the transition",
					n.name, kind))
			}
		})
	}
	return findings
}

// transitionKind classifies a write target as a job state transition:
// a field whose type is the jobs State enum, or Job.Completed. Returns a
// short description, or "" when the write is not a transition.
func transitionKind(pkg *Package, sel *ast.SelectorExpr) string {
	s := pkg.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return ""
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return ""
	}
	if named := namedOf(field.Type()); named != nil && named.Obj().Name() == "State" {
		if p := named.Obj().Pkg(); p != nil && inWALDurTree(p.Path()) {
			owner := "?"
			if o := namedOf(s.Recv()); o != nil {
				owner = o.Obj().Name()
			}
			return owner + "." + field.Name() + " = <State>"
		}
	}
	if field.Name() == "Completed" {
		if o := namedOf(s.Recv()); o != nil && o.Obj().Name() == "Job" {
			if p := o.Obj().Pkg(); p != nil && inWALDurTree(p.Path()) {
				return "Job.Completed"
			}
		}
	}
	return ""
}
