package geom

import (
	"math"
	"testing"
)

// FuzzCircleLensArea drives the lens-area kernel with arbitrary inputs and
// checks its structural invariants: bounded by the smaller circle, zero
// beyond separation, symmetric in the radii, and never NaN.
func FuzzCircleLensArea(f *testing.F) {
	f.Add(1.0, 1.5, 0.5)
	f.Add(1.0, 1.0, 0.0)
	f.Add(0.1, 5.0, 4.9)
	f.Add(2.0, 2.0, 4.0)
	f.Add(1e-9, 1e-9, 1e-10)
	f.Fuzz(func(t *testing.T, r1, r2, s float64) {
		if math.IsNaN(r1) || math.IsNaN(r2) || math.IsNaN(s) {
			return
		}
		if math.Abs(r1) > 1e12 || math.Abs(r2) > 1e12 || math.Abs(s) > 1e12 {
			return // keep products representable
		}
		a := CircleLensArea(r1, r2, s)
		if math.IsNaN(a) || a < 0 {
			t.Fatalf("lens(%g, %g, %g) = %g", r1, r2, s, a)
		}
		if r1 > 0 && r2 > 0 {
			rm := math.Min(r1, r2)
			if a > math.Pi*rm*rm*(1+1e-9)+1e-12 {
				t.Fatalf("lens %g exceeds smaller circle π·%g²", a, rm)
			}
			if math.Abs(s) >= r1+r2 && a != 0 {
				t.Fatalf("separated circles lens = %g", a)
			}
		}
		b := CircleLensArea(r2, r1, s)
		scale := math.Max(math.Max(r1, r2), 1e-30)
		if math.Abs(a-b) > 1e-7*scale*scale+1e-12 {
			t.Fatalf("asymmetric: %g vs %g", a, b)
		}
	})
}

// FuzzSegmentIntersectsRect cross-checks the Liang–Barsky clip against a
// dense sampling oracle away from grazing cases.
func FuzzSegmentIntersectsRect(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 1.0)
	f.Add(-3.0, 0.5, 3.0, 0.5)
	f.Add(2.0, 2.0, 5.0, 5.0)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by float64) {
		for _, v := range []float64{ax, ay, bx, by} {
			if math.IsNaN(v) || math.Abs(v) > 100 {
				return
			}
		}
		r := Rect{-1, -0.5, 1, 0.5}
		seg := Segment{Vec2{ax, ay}, Vec2{bx, by}}
		got := seg.IntersectsRect(r)
		want := bruteSegmentIntersects(seg, r, 4000)
		if got != want && got && !want {
			// The oracle misses grazing hits; a fast-positive is fine.
			return
		}
		if got != want {
			t.Fatalf("segment (%g,%g)-(%g,%g): fast=%v oracle=%v", ax, ay, bx, by, got, want)
		}
	})
}
