package geom

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestVec2Ops(t *testing.T) {
	v := Vec2{3, 4}
	w := Vec2{1, -2}
	if got := v.Add(w); got != (Vec2{4, 2}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec2{2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec2{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %g", got)
	}
	if got := v.Dot(w); got != 3-8 {
		t.Errorf("Dot = %g", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{0, 0, 4, 2}
	if r.Width() != 4 || r.Height() != 2 || r.Area() != 8 {
		t.Error("rect dims wrong")
	}
	if r.Center() != (Vec2{2, 1}) {
		t.Errorf("center = %v", r.Center())
	}
	if !r.Contains(Vec2{0, 0}) || !r.Contains(Vec2{4, 2}) || r.Contains(Vec2{5, 1}) {
		t.Error("contains wrong")
	}
	e := r.Expand(1)
	if e != (Rect{-1, -1, 5, 3}) {
		t.Errorf("expand = %v", e)
	}
}

func TestRectAround(t *testing.T) {
	r := RectAround(Vec2{1, 2}, 4, 6)
	if r != (Rect{-1, -1, 3, 5}) {
		t.Errorf("RectAround = %v", r)
	}
}

func TestRectOverlaps(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{1, 1, 3, 3}, true},
		{Rect{2, 2, 3, 3}, true}, // corner touch
		{Rect{3, 3, 4, 4}, false},
		{Rect{-1, 0.5, 0, 1.5}, true}, // edge touch
		{Rect{0.5, 0.5, 1.5, 1.5}, true},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("Overlaps symmetric (%v) = %v, want %v", c.b, got, c.want)
		}
	}
}

func TestCircleLensAreaLimits(t *testing.T) {
	// Full containment: area is the smaller circle.
	if got := CircleLensArea(1, 1.5, 0); !almostEqual(got, math.Pi, 1e-12) {
		t.Errorf("contained lens = %g, want π", got)
	}
	if got := CircleLensArea(1, 1.5, 0.5); !almostEqual(got, math.Pi, 1e-12) {
		t.Errorf("boundary containment = %g, want π", got)
	}
	// Separation.
	if got := CircleLensArea(1, 1.5, 2.5); got != 0 {
		t.Errorf("tangent circles = %g, want 0", got)
	}
	if got := CircleLensArea(1, 1.5, 10); got != 0 {
		t.Errorf("separated = %g, want 0", got)
	}
	// Degenerate.
	if got := CircleLensArea(0, 1, 0.5); got != 0 {
		t.Errorf("zero radius = %g", got)
	}
	if got := CircleLensArea(-1, 1, 0); got != 0 {
		t.Errorf("negative radius = %g", got)
	}
}

func TestCircleLensAreaEqualCircles(t *testing.T) {
	// For equal radii r at distance s: A = 2r²cos⁻¹(s/2r) − (s/2)√(4r²−s²).
	r, s := 1.0, 0.7
	want := 2*r*r*math.Acos(s/(2*r)) - s/2*math.Sqrt(4*r*r-s*s)
	if got := CircleLensArea(r, r, s); !almostEqual(got, want, 1e-12) {
		t.Errorf("equal-circle lens = %.15g, want %.15g", got, want)
	}
}

func TestCircleLensAreaSymmetry(t *testing.T) {
	f := func(r1, r2, s float64) bool {
		r1 = math.Abs(math.Mod(r1, 3)) + 0.01
		r2 = math.Abs(math.Mod(r2, 3)) + 0.01
		s = math.Abs(math.Mod(s, 6))
		a := CircleLensArea(r1, r2, s)
		b := CircleLensArea(r2, r1, s)
		// Near-tangency suffers acos cancellation with error ~√ε·scale²
		// (≈1.5e-8·scale²); tolerate up to that level.
		scale := math.Max(r1, r2)
		return math.Abs(a-b) <= 1e-7*scale*scale+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCircleLensAreaMonotoneInS(t *testing.T) {
	r1, r2 := 1.0, 1.5
	prev := math.Inf(1)
	for s := 0.0; s <= 2.6; s += 0.01 {
		a := CircleLensArea(r1, r2, s)
		// The containment→lens branch boundary loses ~8 digits to acos
		// cancellation; monotonicity is only meaningful above that noise.
		if a > prev+1e-7 {
			t.Fatalf("lens area increased at s=%g: %g > %g", s, a, prev)
		}
		prev = a
	}
}

func TestCircleLensAreaMonteCarlo(t *testing.T) {
	// Cross-check the closed form against hit-or-miss integration.
	rng := rand.New(rand.NewPCG(1, 2))
	r1, r2, s := 0.8, 1.3, 1.0
	const n = 2000000
	hits := 0
	// Sample within circle 1's bounding box.
	for i := 0; i < n; i++ {
		x := (rng.Float64()*2 - 1) * r1
		y := (rng.Float64()*2 - 1) * r1
		if x*x+y*y <= r1*r1 {
			dx := x - s
			if dx*dx+y*y <= r2*r2 {
				hits++
			}
		}
	}
	mc := float64(hits) / n * (2 * r1) * (2 * r1)
	exact := CircleLensArea(r1, r2, s)
	if math.Abs(mc-exact) > 0.01*exact {
		t.Errorf("MC lens = %g, exact = %g", mc, exact)
	}
}

func TestSegmentLength(t *testing.T) {
	s := Segment{Vec2{0, 0}, Vec2{3, 4}}
	if s.Length() != 5 {
		t.Errorf("length = %g", s.Length())
	}
}

func TestSegmentIntersectsRectCases(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	cases := []struct {
		name string
		seg  Segment
		want bool
	}{
		{"endpoint inside", Segment{Vec2{1, 1}, Vec2{5, 5}}, true},
		{"both inside", Segment{Vec2{0.5, 0.5}, Vec2{1.5, 1.5}}, true},
		{"crossing through", Segment{Vec2{-1, 1}, Vec2{3, 1}}, true},
		{"diagonal crossing", Segment{Vec2{-1, -1}, Vec2{3, 3}}, true},
		{"miss parallel", Segment{Vec2{-1, 3}, Vec2{3, 3}}, false},
		{"miss diagonal", Segment{Vec2{3, 0}, Vec2{5, 5}}, false},
		{"touch corner", Segment{Vec2{2, 3}, Vec2{3, 2}}, false},
		{"touch edge", Segment{Vec2{-1, 2}, Vec2{3, 2}}, true},
		{"degenerate inside", Segment{Vec2{1, 1}, Vec2{1, 1}}, true},
		{"degenerate outside", Segment{Vec2{3, 3}, Vec2{3, 3}}, false},
		{"vertical crossing", Segment{Vec2{1, -1}, Vec2{1, 3}}, true},
		{"stops short", Segment{Vec2{-2, 1}, Vec2{-0.1, 1}}, false},
	}
	for _, c := range cases {
		if got := c.seg.IntersectsRect(r); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

// bruteSegmentIntersects samples the segment densely and checks containment
// — a slow oracle for the Liang–Barsky implementation.
func bruteSegmentIntersects(s Segment, r Rect, steps int) bool {
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		p := Vec2{s.A.X + t*(s.B.X-s.A.X), s.A.Y + t*(s.B.Y-s.A.Y)}
		if r.Contains(p) {
			return true
		}
	}
	return false
}

func TestSegmentIntersectsRectAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	r := Rect{-1, -0.5, 1, 0.5}
	for i := 0; i < 5000; i++ {
		seg := Segment{
			Vec2{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
			Vec2{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
		}
		got := seg.IntersectsRect(r)
		want := bruteSegmentIntersects(seg, r, 3000)
		if got != want {
			// The brute-force oracle can miss grazing intersections;
			// tolerate disagreement only when the segment passes within
			// 1e-3 of the boundary.
			if got && !want {
				continue
			}
			t.Errorf("segment %v vs rect: fast=%v brute=%v", seg, got, want)
		}
	}
}

func TestCircleOverlapsRect(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	cases := []struct {
		c      Vec2
		radius float64
		want   bool
	}{
		{Vec2{1, 1}, 0.1, true},    // center inside
		{Vec2{3, 1}, 1.0, true},    // touching right edge
		{Vec2{3, 1}, 0.5, false},   // short of right edge
		{Vec2{3, 3}, 1.0, false},   // corner: distance √2 > 1
		{Vec2{3, 3}, 1.5, true},    // corner: distance √2 < 1.5
		{Vec2{-1, -1}, 1.42, true}, // far corner just reached
	}
	for _, c := range cases {
		if got := CircleOverlapsRect(c.c, c.radius, r); got != c.want {
			t.Errorf("CircleOverlapsRect(%v, %g) = %v, want %v", c.c, c.radius, got, c.want)
		}
	}
}

func TestSegmentRectAvgCriticalAreaZeroLength(t *testing.T) {
	// A zero-length defect's critical area is the die itself.
	if got := SegmentRectAvgCriticalArea(3, 2, 0); got != 6 {
		t.Errorf("A(0) = %g, want 6", got)
	}
}

func TestSegmentRectAvgCriticalAreaMonteCarlo(t *testing.T) {
	// Validate Eq. 19 directly: the measure of anchor positions (averaged
	// over uniform orientation) whose segment of length l hits an a×b
	// rectangle.
	rng := rand.New(rand.NewPCG(5, 6))
	a, b, l := 2.0, 1.0, 1.5
	die := Rect{0, 0, a, b}
	// Sample anchors over a box padded by l on all sides.
	pad := l + 0.1
	box := Rect{-pad, -pad, a + pad, b + pad}
	const n = 400000
	hits := 0
	for i := 0; i < n; i++ {
		anchor := Vec2{box.X0 + rng.Float64()*box.Width(), box.Y0 + rng.Float64()*box.Height()}
		phi := rng.Float64() * 2 * math.Pi
		seg := Segment{anchor, Vec2{anchor.X + l*math.Cos(phi), anchor.Y + l*math.Sin(phi)}}
		if seg.IntersectsRect(die) {
			hits++
		}
	}
	mc := float64(hits) / n * box.Area()
	want := SegmentRectAvgCriticalArea(a, b, l)
	if math.Abs(mc-want) > 0.02*want {
		t.Errorf("MC critical area = %g, Eq.19 = %g", mc, want)
	}
}

func TestSquaresOverlap(t *testing.T) {
	cases := []struct {
		c1   Vec2
		h1   float64
		c2   Vec2
		h2   float64
		want bool
	}{
		{Vec2{0, 0}, 1, Vec2{1.5, 0}, 1, true},
		{Vec2{0, 0}, 1, Vec2{2, 0}, 1, true}, // edge contact
		{Vec2{0, 0}, 1, Vec2{2.1, 0}, 1, false},
		{Vec2{0, 0}, 1, Vec2{2, 2}, 1, true}, // corner contact
		{Vec2{0, 0}, 0.5, Vec2{0, 3}, 1, false},
		{Vec2{0, 0}, 5, Vec2{1, 1}, 0.1, true}, // containment
	}
	for _, c := range cases {
		if got := SquaresOverlap(c.c1, c.h1, c.c2, c.h2); got != c.want {
			t.Errorf("SquaresOverlap(%v,%g,%v,%g) = %v, want %v", c.c1, c.h1, c.c2, c.h2, got, c.want)
		}
	}
}

func TestRectCorners(t *testing.T) {
	r := Rect{1, 2, 3, 4}
	corners := r.Corners()
	want := [4]Vec2{{1, 2}, {3, 2}, {3, 4}, {1, 4}}
	if corners != want {
		t.Errorf("corners = %v", corners)
	}
}
