// Package geom provides the planar geometry primitives used by the YAP
// yield models and simulator: the circle–circle contact (lens) area behind
// the overlay model's Eq. 5, segment–rectangle intersection for the
// void-tail kill test, and rectangle utilities for die and pad regions.
//
// All coordinates are in meters.
package geom

import "math"

// Vec2 is a point or displacement in the wafer plane.
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v − w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns s·v.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{s * v.X, s * v.Y} }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dot returns the dot product v·w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Rect is an axis-aligned rectangle [X0,X1] × [Y0,Y1].
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// RectAround returns the axis-aligned rectangle of width w and height h
// centered at c.
func RectAround(c Vec2, w, h float64) Rect {
	return Rect{c.X - w/2, c.Y - h/2, c.X + w/2, c.Y + h/2}
}

// Width returns the rectangle's extent in x.
func (r Rect) Width() float64 { return r.X1 - r.X0 }

// Height returns the rectangle's extent in y.
func (r Rect) Height() float64 { return r.Y1 - r.Y0 }

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the rectangle's center point.
func (r Rect) Center() Vec2 { return Vec2{(r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2} }

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Vec2) bool {
	return p.X >= r.X0 && p.X <= r.X1 && p.Y >= r.Y0 && p.Y <= r.Y1
}

// Translate returns r shifted by v.
func (r Rect) Translate(v Vec2) Rect {
	return Rect{r.X0 + v.X, r.Y0 + v.Y, r.X1 + v.X, r.Y1 + v.Y}
}

// Expand returns r grown outward by m on every side (shrunk if m < 0).
func (r Rect) Expand(m float64) Rect {
	return Rect{r.X0 - m, r.Y0 - m, r.X1 + m, r.Y1 + m}
}

// Overlaps reports whether r and q intersect (boundary contact counts).
func (r Rect) Overlaps(q Rect) bool {
	return r.X0 <= q.X1 && q.X0 <= r.X1 && r.Y0 <= q.Y1 && q.Y0 <= r.Y1
}

// Corners returns the four corner points of r.
func (r Rect) Corners() [4]Vec2 {
	return [4]Vec2{{r.X0, r.Y0}, {r.X1, r.Y0}, {r.X1, r.Y1}, {r.X0, r.Y1}}
}

// CircleLensArea returns the intersection area of two circles with radii r1
// and r2 whose centers are distance s apart — the Cu-pad contact area of
// the paper's Eq. 5:
//
//	S = π·min(r1,r2)²                                 s ≤ |r2 − r1|
//	S = θ1·r1² + θ2·r2² − s·r1·sin θ1                 |r2 − r1| < s < r1+r2
//	S = 0                                             s ≥ r1 + r2
//
// with θ1 = arccos((s²+r1²−r2²)/(2·s·r1)) and θ2 likewise. The middle
// branch is the standard circular-lens formula; the last term s·r1·sinθ1
// equals twice the area of the center–center–intersection triangle.
func CircleLensArea(r1, r2, s float64) float64 {
	if r1 < 0 || r2 < 0 {
		return 0
	}
	s = math.Abs(s)
	if s >= r1+r2 || r1 == 0 || r2 == 0 {
		return 0
	}
	if s <= math.Abs(r2-r1) {
		rm := math.Min(r1, r2)
		return math.Pi * rm * rm
	}
	// Clamp the arccos arguments against floating-point drift at the branch
	// boundaries.
	c1 := clamp((s*s+r1*r1-r2*r2)/(2*s*r1), -1, 1)
	c2 := clamp((s*s+r2*r2-r1*r1)/(2*s*r2), -1, 1)
	th1 := math.Acos(c1)
	th2 := math.Acos(c2)
	return th1*r1*r1 + th2*r2*r2 - s*r1*math.Sin(th1)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Segment is the line segment from A to B.
type Segment struct {
	A, B Vec2
}

// Length returns the segment's length.
func (s Segment) Length() float64 { return s.B.Sub(s.A).Norm() }

// IntersectsRect reports whether the segment touches the rectangle,
// including the cases where an endpoint lies inside and where the segment
// crosses the interior without either endpoint inside. It is the kill test
// for a void tail (modeled as a line, §III-C) against a die's pad array.
//
// The implementation is the slab (Liang–Barsky) clip: the segment is
// parameterized as A + t·(B−A), t ∈ [0,1], and the parameter interval is
// clipped against each of the four half-planes; a nonempty interval means
// intersection.
func (s Segment) IntersectsRect(r Rect) bool {
	d := s.B.Sub(s.A)
	t0, t1 := 0.0, 1.0

	clip := func(p, q float64) bool {
		// Half-plane p·t ≤ q.
		if p == 0 {
			return q >= 0 // parallel: inside iff q ≥ 0
		}
		t := q / p
		if p < 0 {
			if t > t1 {
				return false
			}
			if t > t0 {
				t0 = t
			}
		} else {
			if t < t0 {
				return false
			}
			if t < t1 {
				t1 = t
			}
		}
		return true
	}

	return clip(-d.X, s.A.X-r.X0) &&
		clip(d.X, r.X1-s.A.X) &&
		clip(-d.Y, s.A.Y-r.Y0) &&
		clip(d.Y, r.Y1-s.A.Y)
}

// CircleOverlapsRect reports whether the disk of the given radius centered
// at c intersects the rectangle r.
func CircleOverlapsRect(c Vec2, radius float64, r Rect) bool {
	// Distance from c to the rectangle.
	dx := math.Max(math.Max(r.X0-c.X, 0), c.X-r.X1)
	dy := math.Max(math.Max(r.Y0-c.Y, 0), c.Y-r.Y1)
	return dx*dx+dy*dy <= radius*radius
}

// SegmentRectAvgCriticalArea returns the orientation-averaged critical area
// A(l) = a·b + (2/π)(a+b)·l of a length-l line defect against an a×b
// rectangle (Eq. 19 of the paper): the measure of defect anchor positions,
// averaged over uniform defect direction φ ∈ [0,2π), for which the defect
// segment intersects the rectangle.
func SegmentRectAvgCriticalArea(a, b, l float64) float64 {
	return a*b + 2/math.Pi*(a+b)*l
}

// SquaresOverlap reports whether two axis-aligned squares, centered at c1
// and c2 with half-sides h1 and h2, intersect. Used by the D2W defect
// model's square-void/square-pad kill rule (Eq. 25).
func SquaresOverlap(c1 Vec2, h1 float64, c2 Vec2, h2 float64) bool {
	return math.Abs(c1.X-c2.X) <= h1+h2 && math.Abs(c1.Y-c2.Y) <= h1+h2
}
