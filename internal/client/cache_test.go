package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"yap/internal/core"
	"yap/internal/fleetcache"
	"yap/internal/service"
)

// newFleet builds an n-member yapserve fleet over real HTTP: each member
// is a service.Server with its own fleetcache wired to the others
// through CacheTransport — the same topology cmd/yapserve -cache-peers
// assembles.
func newFleet(t *testing.T, n int) (urls []string, caches []*fleetcache.Cache) {
	t.Helper()
	servers := make([]*service.Server, n)
	urls = make([]string, n)
	for i := 0; i < n; i++ {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			servers[i].ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	caches = make([]*fleetcache.Cache, n)
	for i := 0; i < n; i++ {
		c := fleetcache.New(fleetcache.Config{
			Self:      urls[i],
			Members:   urls,
			Transport: &CacheTransport{},
		})
		t.Cleanup(c.Close)
		caches[i] = c
		servers[i] = service.New(service.Config{FleetCache: c})
	}
	return urls, caches
}

func memberClient(t *testing.T, url string) *Client {
	t.Helper()
	c, err := New(Config{BaseURL: url})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// indexOf returns the position of url in urls.
func indexOf(t *testing.T, urls []string, url string) int {
	t.Helper()
	for i, u := range urls {
		if u == url {
			return i
		}
	}
	t.Fatalf("%q not in fleet %v", url, urls)
	return -1
}

// TestFleetPeerFetchOverHTTP: a key computed on its owner is answered on
// every other member by one peer fetch, bit-identically, with no second
// engine computation anywhere in the fleet.
func TestFleetPeerFetchOverHTTP(t *testing.T) {
	urls, caches := newFleet(t, 3)
	p := core.Baseline()
	p.Warpage = 30e-6
	hash := p.CanonicalHash()
	owner := indexOf(t, urls, fleetcache.Owner(urls, "w2w", hash))

	ctx := context.Background()
	req := service.EvaluateRequest{Mode: "w2w", Params: json.RawMessage(`{"Warpage": 30e-6}`)}
	first, err := memberClient(t, urls[owner]).Evaluate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first evaluation reported cached")
	}
	for i := range urls {
		if i == owner {
			continue
		}
		got, err := memberClient(t, urls[i]).Evaluate(ctx, req)
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		if !got.Cached {
			t.Errorf("member %d did not answer from the fleet cache", i)
		}
		if *got.W2W != *first.W2W {
			t.Errorf("member %d breakdown %+v != owner %+v", i, got.W2W, first.W2W)
		}
		if st := caches[i].Stats(); st.PeerHits != 1 || st.Computes != 0 {
			t.Errorf("member %d stats: peer_hits=%d computes=%d, want 1/0", i, st.PeerHits, st.Computes)
		}
	}
	var computes uint64
	for _, c := range caches {
		computes += c.Stats().Computes
	}
	if computes != 1 {
		t.Errorf("fleet-wide computes = %d, want 1", computes)
	}
}

// TestFleetPushWarmsOwner: a key computed on a NON-owner is pushed to
// its owner asynchronously, so the owner later answers from its local
// store without computing.
func TestFleetPushWarmsOwner(t *testing.T) {
	urls, caches := newFleet(t, 3)
	p := core.Baseline()
	p.Warpage = 42e-6
	hash := p.CanonicalHash()
	owner := indexOf(t, urls, fleetcache.Owner(urls, "w2w", hash))
	nonOwner := (owner + 1) % len(urls)

	ctx := context.Background()
	req := service.EvaluateRequest{Mode: "w2w", Params: json.RawMessage(`{"Warpage": 42e-6}`)}
	if _, err := memberClient(t, urls[nonOwner]).Evaluate(ctx, req); err != nil {
		t.Fatal(err)
	}
	// The push is asynchronous; poll the owner's cache endpoint until it
	// lands (the GET never computes, so a hit proves the push arrived).
	oc := memberClient(t, urls[owner])
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := oc.GetCached(ctx, "w2w", hash); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("push never reached the owner; pusher stats: %+v", caches[nonOwner].Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	got, err := oc.Evaluate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Cached {
		t.Error("owner recomputed a key that was pushed to it")
	}
	if st := caches[owner].Stats(); st.Computes != 0 || st.Adopted != 1 {
		t.Errorf("owner stats: computes=%d adopted=%d, want 0/1", st.Computes, st.Adopted)
	}
}

// TestEvaluateBatchClient: the typed batch wrapper returns per-point
// results identical to individual Evaluate calls.
func TestEvaluateBatchClient(t *testing.T) {
	urls, _ := newFleet(t, 1)
	c := memberClient(t, urls[0])
	ctx := context.Background()
	resp, err := c.EvaluateBatch(ctx, service.BatchEvaluateRequest{
		Mode: "both",
		Points: []json.RawMessage{
			json.RawMessage(`{}`),
			json.RawMessage(`{"Warpage": 30e-6}`),
			json.RawMessage(`{"NoSuchKnob": 1}`),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 3 || resp.Failed != 1 {
		t.Fatalf("points=%d failed=%d", len(resp.Points), resp.Failed)
	}
	want, err := c.Evaluate(ctx, service.EvaluateRequest{Params: json.RawMessage(`{"Warpage": 30e-6}`)})
	if err != nil {
		t.Fatal(err)
	}
	pt := resp.Points[1]
	if pt.ParamsHash != want.ParamsHash || *pt.W2W != *want.W2W || *pt.D2W != *want.D2W {
		t.Errorf("batch point %+v != evaluate %+v", pt, want)
	}
	if resp.Points[2].Error == "" {
		t.Error("invalid point did not report its error")
	}
}

// TestGetCachedMiss: a cold member's cache endpoint surfaces the typed
// cache_miss code.
func TestGetCachedMiss(t *testing.T) {
	urls, _ := newFleet(t, 1)
	_, err := memberClient(t, urls[0]).GetCached(context.Background(), "w2w", 0xdeadbeef)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "cache_miss" || apiErr.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want 404 cache_miss", err)
	}
}

// TestCacheTransportPeerMiss: the transport maps a peer 404 to the
// ErrPeerMiss sentinel the fleet cache's breaker treats as healthy.
func TestCacheTransportPeerMiss(t *testing.T) {
	urls, _ := newFleet(t, 1)
	tr := &CacheTransport{}
	_, err := tr.FetchCached(context.Background(), urls[0], "w2w", 0xdeadbeef)
	if !errors.Is(err, fleetcache.ErrPeerMiss) {
		t.Fatalf("err = %v, want ErrPeerMiss", err)
	}
}

// TestCacheTransportRoundTrip: offer then fetch through real HTTP keeps
// the entry bit-identical.
func TestCacheTransportRoundTrip(t *testing.T) {
	urls, _ := newFleet(t, 1)
	tr := &CacheTransport{}
	ctx := context.Background()
	p := core.Baseline()
	p.Warpage = 33e-6
	b, err := p.EvaluateW2W()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	e := fleetcache.Entry{Mode: "w2w", Hash: p.CanonicalHash(), Params: raw, Breakdown: b}
	if err := tr.OfferCached(ctx, urls[0], e); err != nil {
		t.Fatal(err)
	}
	got, err := tr.FetchCached(ctx, urls[0], "w2w", p.CanonicalHash())
	if err != nil {
		t.Fatal(err)
	}
	if got.Breakdown != b {
		t.Errorf("breakdown %+v != %+v", got.Breakdown, b)
	}
	q, err := core.DecodeParams(core.Baseline(), bytes.NewReader(got.Params))
	if err != nil {
		t.Fatal(err)
	}
	if !q.Equal(p) || q.CanonicalHash() != p.CanonicalHash() {
		t.Error("params did not survive the round trip")
	}

	// An offer whose params hash elsewhere is refused by the receiver.
	bad := e
	bad.Hash = e.Hash + 1
	if err := tr.OfferCached(ctx, urls[0], bad); err == nil {
		t.Error("mismatched offer was accepted")
	}
}
