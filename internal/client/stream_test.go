package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"yap/internal/jobs"
	"yap/internal/service"
)

func TestStreamJobToCompletion(t *testing.T) {
	c := newJobsTestClient(t)
	ctx := context.Background()
	sub, err := c.SubmitJob(ctx, service.JobSubmitRequest{
		Mode: "d2w", Seed: 5, Dies: 10000, Workers: 2, CheckpointEvery: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}

	var events []service.JobStreamEvent
	final, err := c.StreamJob(ctx, sub.ID, 0, func(ev *service.JobStreamEvent) error {
		events = append(events, *ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || final.Result == nil {
		t.Fatalf("final event %+v, want done with result", final)
	}
	if len(events) == 0 || !reflect.DeepEqual(events[len(events)-1], *final) {
		t.Fatalf("handler saw %d events; last must equal the returned final", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq || events[i].Completed < events[i-1].Completed {
			t.Errorf("events out of order at %d: %+v after %+v", i, events[i], events[i-1])
		}
	}

	// The streamed final result is bit-identical to the poll endpoint's.
	job, err := c.GetJob(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, want := *final.Result, *job.Result
	got.ElapsedMs, want.ElapsedMs = 0, 0
	if !reflect.DeepEqual(got, want) {
		t.Errorf("streamed result != GetJob result:\n got %+v\nwant %+v", got, want)
	}
}

// A connection dropped mid-stream reconnects with Last-Event-ID carrying
// the last sequence seen, and the watch completes on the real stream.
func TestStreamJobReconnectsAfterDrop(t *testing.T) {
	jm, err := jobs.Open(jobs.Config{Dir: t.TempDir(), SimWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jm.Close() })
	svc := service.New(service.Config{Jobs: jm})

	fakeFrame := func(seq int, ev service.JobStreamEvent) string {
		ev.Seq = seq
		raw, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("id: %d\nevent: %s\ndata: %s\n\n", seq, ev.State, raw)
	}

	var streamCalls atomic.Int32
	var resumeID atomic.Value
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/stream") {
			switch streamCalls.Add(1) {
			case 1:
				// Two mid-run frames, then the connection "drops" (clean
				// return = EOF before any terminal event).
				w.Header().Set("Content-Type", "text/event-stream")
				running := service.JobStreamEvent{ID: "job-000001", State: "running", Completed: 2, Samples: 4}
				fmt.Fprint(w, fakeFrame(1, running))
				fmt.Fprint(w, fakeFrame(2, running))
				return
			case 2:
				resumeID.Store(r.Header.Get("Last-Event-ID"))
			}
		}
		svc.ServeHTTP(w, r)
	})
	c, _ := newTestClient(t, h, nil)
	ctx := context.Background()
	sub, err := c.SubmitJob(ctx, service.JobSubmitRequest{Seed: 4, Wafers: 4, Workers: 2, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}

	var seqs []int
	final, err := c.StreamJob(ctx, sub.ID, 0, func(ev *service.JobStreamEvent) error {
		seqs = append(seqs, ev.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || final.Result == nil {
		t.Fatalf("final event %+v, want done", final)
	}
	if streamCalls.Load() < 2 {
		t.Fatalf("stream connected %d times, want a reconnect", streamCalls.Load())
	}
	if got := resumeID.Load(); got != "2" {
		t.Errorf("reconnect sent Last-Event-ID %v, want \"2\" (last seq before the drop)", got)
	}
	if len(seqs) < 3 || seqs[0] != 1 || seqs[1] != 2 {
		t.Errorf("handler saw seqs %v, want the two pre-drop frames then the resumed stream", seqs)
	}
}

// A handler error aborts the watch immediately — no reconnect attempts.
func TestStreamJobHandlerAborts(t *testing.T) {
	c := newJobsTestClient(t)
	ctx := context.Background()
	sub, err := c.SubmitJob(ctx, service.JobSubmitRequest{Seed: 6, Wafers: 4, Workers: 2, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitJob(ctx, sub.ID, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	_, err = c.StreamJob(ctx, sub.ID, 0, func(*service.JobStreamEvent) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("got %v, want the handler's error", err)
	}
}

func TestStreamJobNotFound(t *testing.T) {
	c := newJobsTestClient(t)
	_, err := c.StreamJob(context.Background(), "job-999999", 0, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || apiErr.Code != "not_found" {
		t.Errorf("got %v, want 404 not_found", err)
	}
}

// Watching an already-finished job answers its terminal snapshot
// immediately — the server always re-sends a terminal job's snapshot,
// whatever Last-Event-ID is presented, so a watch resumed at any sequence
// (even one from a previous daemon incarnation) terminates.
func TestStreamJobAlreadyDone(t *testing.T) {
	c := newJobsTestClient(t)
	ctx := context.Background()
	sub, err := c.SubmitJob(ctx, service.JobSubmitRequest{Seed: 12, Wafers: 2, Workers: 2, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitJob(ctx, sub.ID, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	final, err := c.StreamJob(ctx, sub.ID, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || final.Result == nil {
		t.Errorf("final event %+v, want done snapshot", final)
	}

	// Resuming from the terminal event's own sequence terminates too.
	again, err := c.StreamJob(ctx, sub.ID, final.Seq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.State != "done" || again.Result == nil {
		t.Errorf("terminal-seq resume event %+v, want done snapshot", again)
	}
}

// TestStreamJobWireFormatEdgeCases pins wire shapes real proxies and
// middleware produce, all of which must decode to the same event: CRLF
// line endings, `data:` with no space after the colon (the space is
// optional per the SSE grammar), and a UTF-8 BOM before the first frame
// (the spec strips exactly one leading U+FEFF from the stream).
func TestStreamJobWireFormatEdgeCases(t *testing.T) {
	payload := `{"id": "job-000001", "seq": 1, "state": "done", "completed": 4, "samples": 4}`
	cases := []struct {
		name  string
		frame string
	}{
		{"crlf", "id: 1\r\nevent: done\r\ndata: " + payload + "\r\n\r\n"},
		{"data-no-space", "id: 1\nevent: done\ndata:" + payload + "\n\n"},
		{"utf8-bom", "\ufeffid: 1\nevent: done\ndata: " + payload + "\n\n"},
		{"bom-crlf-no-space", "\ufeffid: 1\r\nevent: done\r\ndata:" + payload + "\r\n\r\n"},
		// Only ONE leading BOM is stripped: the second turns the id: line
		// into an unknown field, which the parser ignores — the frame still
		// completes off its data line.
		{"double-bom", "\ufeff\ufeffid: 1\nevent: done\ndata: " + payload + "\n\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "text/event-stream")
				fmt.Fprint(w, tc.frame)
			})
			c, _ := newTestClient(t, h, nil)
			final, err := c.StreamJob(context.Background(), "job-000001", 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if final.State != "done" || final.Completed != 4 || final.Seq != 1 {
				t.Errorf("final event %+v, want done at 4/4 seq 1", final)
			}
		})
	}
}

// The SSE parser joins a frame's data: lines with newlines, as the SSE
// contract requires — a proxy between client and daemon may re-chunk a
// frame into several data: lines even though our server emits one.
func TestStreamJobMultiLineData(t *testing.T) {
	frame := "id: 1\nevent: done\n" +
		"data: {\"id\": \"job-000001\",\n" +
		"data:  \"seq\": 1, \"state\": \"done\",\n" +
		"data:  \"completed\": 4, \"samples\": 4}\n\n"
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, frame)
	})
	c, _ := newTestClient(t, h, nil)
	final, err := c.StreamJob(context.Background(), "job-000001", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || final.Completed != 4 || final.Seq != 1 {
		t.Errorf("final event %+v, want done at 4/4 seq 1", final)
	}
}
