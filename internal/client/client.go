// Package client is the resilient Go client for the yapserve HTTP API:
// typed wrappers over /v1/evaluate, /v1/simulate, /v1/sweep, /v1/jobs
// and /healthz that retry transient failures with capped exponential backoff and
// deterministic jitter, honor the server's Retry-After hints (both the
// whole-second header and the sub-second retry_after_ms body field), and
// optionally stop hammering a struggling server through a client-side
// circuit breaker. Permanent failures (4xx) surface immediately as typed
// *APIError values carrying the machine-readable error code.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"yap/internal/resilience"
	"yap/internal/service"
)

// Config tunes a Client. Only BaseURL is required.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides http.DefaultClient (for timeouts, transports,
	// httptest servers).
	HTTPClient *http.Client
	// MaxAttempts bounds tries per call (first try included); 0 means 4.
	MaxAttempts int
	// Backoff paces retries; the zero value is usable (100ms base, 10s
	// cap, factor 2, ±10% jitter). Give concurrent clients distinct Seeds
	// so their retries decorrelate.
	Backoff resilience.Backoff
	// Breaker optionally sheds calls client-side after repeated transport
	// or server failures; nil disables.
	Breaker *resilience.Breaker
	// MaxBodyBytes caps response bodies read into memory; 0 means 8 MiB.
	MaxBodyBytes int64
}

// Client calls the yapserve API. Safe for concurrent use.
//
// Against a replicated control plane (yapserve -peers), the client
// follows the leader automatically: a 409 "not_leader" response carries
// the leader's advertised URL, the client re-aims subsequent requests at
// it within the normal retry schedule, and a transport failure against a
// learned leader falls back to the configured BaseURL (whichever member
// it names will name the new leader).
type Client struct {
	cfg Config

	mu     sync.Mutex
	leader string // learned leader base URL; "" means cfg.BaseURL
}

// New validates cfg and returns a ready Client.
func New(cfg Config) (*Client, error) {
	base := strings.TrimRight(cfg.BaseURL, "/")
	if base == "" {
		return nil, errors.New("client: BaseURL is required")
	}
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		return nil, fmt.Errorf("client: BaseURL %q is not an http(s) URL", cfg.BaseURL)
	}
	cfg.BaseURL = base
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	return &Client{cfg: cfg}, nil
}

// APIError is a non-2xx response decoded into the server's error shape.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the machine-readable error code ("overloaded",
	// "invalid_params", ...); "unknown" when the body was not the
	// structured error shape.
	Code string
	// Message is the human-readable text.
	Message string
	// RetryAfter is the server's back-off hint (retry_after_ms body field
	// preferred, Retry-After header otherwise), zero when absent.
	RetryAfter time.Duration
	// LeaderURL is the replica leader's advertised URL from a 409
	// "not_leader" response; empty while an election is in flight.
	LeaderURL string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d %s: %s", e.Status, e.Code, e.Message)
}

// Temporary reports whether retrying the identical request can succeed:
// 429, every 5xx and "not_leader" (the retry lands on the leader the
// response named, or on a freshly elected one) qualify; other 4xx are
// permanent.
func (e *APIError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status >= 500 || e.Code == "not_leader"
}

// ErrAttemptsExhausted wraps the final failure after MaxAttempts tries.
var ErrAttemptsExhausted = errors.New("client: retry attempts exhausted")

// Evaluate calls POST /v1/evaluate.
func (c *Client) Evaluate(ctx context.Context, req service.EvaluateRequest) (*service.EvaluateResponse, error) {
	var resp service.EvaluateResponse
	if err := c.do(ctx, "/v1/evaluate", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Simulate calls POST /v1/simulate. A deadline-limited run comes back
// with Partial set rather than an error — inspect it when completeness
// matters.
func (c *Client) Simulate(ctx context.Context, req service.SimulateRequest) (*service.SimulateResponse, error) {
	var resp service.SimulateResponse
	if err := c.do(ctx, "/v1/simulate", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Shard calls POST /v1/shard — one slice of a distributed Monte-Carlo
// run (the dispatch edge of internal/dist). The shard protocol is exactly
// as retry-safe as simulate: a shard is a pure function of (params, seed,
// start, count), so re-dispatching after a transient failure reproduces
// the identical tallies.
func (c *Client) Shard(ctx context.Context, req service.ShardRequest) (*service.ShardResponse, error) {
	var resp service.ShardResponse
	if err := c.do(ctx, "/v1/shard", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Sweep calls POST /v1/sweep.
func (c *Client) Sweep(ctx context.Context, req service.SweepRequest) (*service.SweepResponse, error) {
	var resp service.SweepResponse
	if err := c.do(ctx, "/v1/sweep", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health calls GET /healthz.
func (c *Client) Health(ctx context.Context) (*service.HealthResponse, error) {
	var resp service.HealthResponse
	if err := c.do(ctx, "/healthz", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SubmitJob calls POST /v1/jobs, enqueueing a durable asynchronous
// Monte-Carlo run. The server answers 202 with the pending job; poll it
// with GetJob or WaitJob. Note that a retried submission (transient
// failure after the server durably accepted the job) enqueues a second
// job — the runs are deterministic, so the duplicate produces identical
// results and only costs compute, but callers that care should ListJobs
// and reconcile by params hash and seed.
func (c *Client) SubmitJob(ctx context.Context, req service.JobSubmitRequest) (*service.JobResponse, error) {
	var resp service.JobResponse
	if err := c.do(ctx, "/v1/jobs", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// GetJob calls GET /v1/jobs/{id}. A 404 carries code "not_found" for an
// unknown or expired job, or "jobs_disabled" when the daemon runs
// without a job store.
func (c *Client) GetJob(ctx context.Context, id string) (*service.JobResponse, error) {
	var resp service.JobResponse
	if err := c.doMethod(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ListJobs calls GET /v1/jobs.
func (c *Client) ListJobs(ctx context.Context) (*service.JobListResponse, error) {
	var resp service.JobListResponse
	if err := c.do(ctx, "/v1/jobs", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// CancelJob calls DELETE /v1/jobs/{id}. Canceling an already-finished
// job surfaces an *APIError with code "job_terminal" (409).
func (c *Client) CancelJob(ctx context.Context, id string) (*service.JobResponse, error) {
	var resp service.JobResponse
	if err := c.doMethod(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// WaitJob polls GET /v1/jobs/{id} every interval (250ms when
// non-positive) until the job reaches a terminal state — done, failed or
// canceled — and returns it. Polling is resumable by construction: each
// poll is an independent idempotent GET with the client's full retry
// schedule behind it, so a daemon restart mid-wait (during which the job
// itself resumes from its last durable checkpoint) only costs a few
// retried polls. WaitJob does not turn failed or canceled states into
// errors; inspect State on the returned job.
func (c *Client) WaitJob(ctx context.Context, id string, interval time.Duration) (*service.JobResponse, error) {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	for {
		job, err := c.GetJob(ctx, id)
		if err != nil {
			return nil, err
		}
		switch job.State {
		case "done", "failed", "canceled":
			return job, nil
		}
		if err := resilience.Sleep(ctx, interval); err != nil {
			return nil, fmt.Errorf("client: waiting for job %s: %w", id, err)
		}
	}
}

// do runs the retry loop around one logical call, inferring the verb
// from the payload: POST with a body, GET without.
func (c *Client) do(ctx context.Context, path string, body, out any) error {
	method := http.MethodGet
	if body != nil {
		method = http.MethodPost
	}
	return c.doMethod(ctx, method, path, body, out)
}

// doMethod runs the retry loop around one logical call: permanent
// failures and context expiry return immediately, transient ones
// (connection errors, 429, 5xx, an open client breaker) back off —
// honoring the larger of the backoff schedule and the server's
// Retry-After hint — and try again.
func (c *Client) doMethod(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			delay := c.cfg.Backoff.Delay(attempt - 1)
			if hint := retryAfterOf(lastErr); hint > delay {
				delay = hint
			}
			if err := resilience.Sleep(ctx, delay); err != nil {
				return fmt.Errorf("client: giving up while backing off: %w", errors.Join(err, lastErr))
			}
		}
		err := c.once(ctx, method, path, payload, out)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return fmt.Errorf("client: request context done: %w", errors.Join(ctx.Err(), err))
		}
		if !temporary(err) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("client: %d attempts failed: %w", c.cfg.MaxAttempts, errors.Join(ErrAttemptsExhausted, lastErr))
}

// once performs a single HTTP exchange, consulting the client-side
// breaker. Outcome recording: transport errors and 5xx count as failures;
// any parseable HTTP response below 500 counts as success (the server is
// reachable and judging requests, which is what the breaker protects).
func (c *Client) once(ctx context.Context, method, path string, payload []byte, out any) error {
	if err := c.cfg.Breaker.Allow(); err != nil {
		return err
	}
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	base := c.baseURL()
	req, err := http.NewRequestWithContext(ctx, method, base+path, body)
	if err != nil {
		c.cfg.Breaker.Record(true) // construction failure says nothing about the server
		return fmt.Errorf("client: building request: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			// A transport-level failure with a live context indicts the
			// server side; a context-killed exchange is neutral.
			c.cfg.Breaker.Record(false)
		}
		// A learned leader that stopped answering is stale (it may be the
		// member that just died); fall back to the configured base URL,
		// whose member will name the new leader.
		c.forgetLeader(base)
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close() //nolint:errcheck
	data, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		c.cfg.Breaker.Record(false)
		return fmt.Errorf("client: reading %s response: %w", path, err)
	}
	if resp.StatusCode >= 300 {
		apiErr := decodeAPIError(resp, data)
		c.cfg.Breaker.Record(resp.StatusCode < 500)
		if apiErr.Code == "not_leader" {
			c.learnLeader(apiErr.LeaderURL)
		}
		return apiErr
	}
	c.cfg.Breaker.Record(true)
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil
}

// baseURL is the current request target: the learned leader when one is
// known, the configured BaseURL otherwise.
func (c *Client) baseURL() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.leader != "" {
		return c.leader
	}
	return c.cfg.BaseURL
}

// learnLeader records the leader URL a 409 "not_leader" response named,
// so the retry loop's next attempt goes straight there. An empty URL
// (election in flight) changes nothing — the retry's backoff gives the
// cluster time to elect.
func (c *Client) learnLeader(url string) {
	url = strings.TrimRight(url, "/")
	if url == "" || (!strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://")) {
		return
	}
	c.mu.Lock()
	if url == c.cfg.BaseURL {
		url = "" // the configured member IS the leader; no override needed
	}
	c.leader = url
	c.mu.Unlock()
}

// forgetLeader drops the learned leader, but only if it is the base the
// failed exchange actually used — a racing success against a newer
// leader must not be wiped out.
func (c *Client) forgetLeader(base string) {
	c.mu.Lock()
	if c.leader == base {
		c.leader = ""
	}
	c.mu.Unlock()
}

// decodeAPIError turns a non-2xx response into an *APIError, extracting
// the back-off hint from the body (millisecond precision) or the
// Retry-After header.
func decodeAPIError(resp *http.Response, data []byte) *APIError {
	apiErr := &APIError{Status: resp.StatusCode, Code: "unknown", Message: strings.TrimSpace(string(data))}
	var wire service.ErrorResponse
	if err := json.Unmarshal(data, &wire); err == nil && wire.Error.Code != "" {
		apiErr.Code = wire.Error.Code
		apiErr.Message = wire.Error.Message
		if wire.Error.RetryAfterMs > 0 {
			apiErr.RetryAfter = time.Duration(wire.Error.RetryAfterMs) * time.Millisecond
		}
		apiErr.LeaderURL = wire.Error.LeaderURL
	}
	if apiErr.RetryAfter == 0 {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return apiErr
}

// temporary reports whether err is worth retrying.
func temporary(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Temporary()
	}
	if errors.Is(err, resilience.ErrBreakerOpen) {
		return true // the cooldown may elapse within the backoff schedule
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	// Transport-level errors (connection refused, reset) are transient.
	return true
}

// retryAfterOf extracts a server or breaker back-off hint from err.
func retryAfterOf(err error) time.Duration {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.RetryAfter
	}
	var open *resilience.BreakerOpenError
	if errors.As(err, &open) {
		return open.RetryAfter
	}
	return 0
}
