package client

import (
	"context"
	"errors"
	"net/http"
	"reflect"
	"testing"
	"time"

	"yap/internal/faultinject"
	"yap/internal/jobs"
	"yap/internal/service"
)

// newJobsTestClient wires a real manager + service behind httptest, the
// full stack a production client talks to.
func newJobsTestClient(t *testing.T) *Client {
	t.Helper()
	jm, err := jobs.Open(jobs.Config{Dir: t.TempDir(), SimWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jm.Close() })
	c, _ := newTestClient(t, service.New(service.Config{Jobs: jm}), nil)
	return c
}

func TestSubmitWaitJobMatchesSimulate(t *testing.T) {
	c := newJobsTestClient(t)
	ctx := context.Background()
	sub, err := c.SubmitJob(ctx, service.JobSubmitRequest{Seed: 9, Wafers: 4, Workers: 2, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || sub.State != "pending" {
		t.Fatalf("submit response %+v", sub)
	}
	job, err := c.WaitJob(ctx, sub.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != "done" || job.Result == nil {
		t.Fatalf("job %+v, want done with result", job)
	}

	sync, err := c.Simulate(ctx, service.SimulateRequest{Seed: 9, Wafers: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	async := *job.Result
	async.ElapsedMs, sync.ElapsedMs = 0, 0
	async.Completed, async.Requested = 0, 0
	sync.Completed, sync.Requested = 0, 0
	if !reflect.DeepEqual(async, *sync) {
		t.Errorf("async result != sync result:\n async %+v\n  sync %+v", async, *sync)
	}
}

func TestListAndCancelJob(t *testing.T) {
	// Pace every job slice with an injected delay so the job cannot
	// finish before the cancel request lands, however loaded the
	// machine running the suite is.
	inj, err := faultinject.ParseSpec("seed=1," + faultinject.HookJobsRun + "=1:delay:20ms")
	if err != nil {
		t.Fatal(err)
	}
	jm, err := jobs.Open(jobs.Config{Dir: t.TempDir(), SimWorkers: 2, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jm.Close() })
	c, _ := newTestClient(t, service.New(service.Config{Jobs: jm}), nil)
	ctx := context.Background()
	sub, err := c.SubmitJob(ctx, service.JobSubmitRequest{Seed: 2, Wafers: 500, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	list, err := c.ListJobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != sub.ID {
		t.Fatalf("list %+v, want just %s", list.Jobs, sub.ID)
	}
	if _, err := c.CancelJob(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	job, err := c.WaitJob(ctx, sub.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != "canceled" {
		t.Fatalf("state %s, want canceled", job.State)
	}
	// WaitJob reports terminal states without turning them into errors;
	// a second cancel is the caller's bug and surfaces as job_terminal.
	_, err = c.CancelJob(ctx, sub.ID)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict || apiErr.Code != "job_terminal" {
		t.Errorf("second cancel: %v, want 409 job_terminal", err)
	}
}

func TestGetJobNotFound(t *testing.T) {
	c := newJobsTestClient(t)
	_, err := c.GetJob(context.Background(), "job-999999")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || apiErr.Code != "not_found" {
		t.Errorf("got %v, want 404 not_found", err)
	}
}

func TestJobsDisabledSurfacesCode(t *testing.T) {
	c, _ := newTestClient(t, service.New(service.Config{}), nil)
	_, err := c.SubmitJob(context.Background(), service.JobSubmitRequest{Wafers: 2})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "jobs_disabled" {
		t.Errorf("got %v, want jobs_disabled", err)
	}
	if apiErr.Temporary() {
		t.Error("jobs_disabled classified as temporary; retrying cannot help")
	}
}

func TestWaitJobHonorsContext(t *testing.T) {
	c := newJobsTestClient(t)
	sub, err := c.SubmitJob(context.Background(), service.JobSubmitRequest{Seed: 7, Wafers: 2000, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := c.WaitJob(ctx, sub.ID, time.Hour); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("got %v, want deadline exceeded", err)
	}
	if _, err := c.CancelJob(context.Background(), sub.ID); err != nil {
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Code != "job_terminal" {
			t.Fatal(err)
		}
	}
}
