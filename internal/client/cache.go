package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"yap/internal/core"
	"yap/internal/fleetcache"
	"yap/internal/service"
)

// This file is the client half of the fleet cache: the typed batch
// endpoint wrapper, a helper for reading one member's cache entry, and
// the HTTP implementation of fleetcache.Transport that cmd/yapserve
// wires between fleet members.

// EvaluateBatch calls POST /v1/evaluate/batch: N parameter points over a
// shared base, evaluated through the server's fleet cache tier. Points
// come back in index order with per-point error isolation — check
// resp.Failed and each point's Error. The call is idempotent (analytic
// evaluation is a pure function), so the client's full retry schedule
// applies.
func (c *Client) EvaluateBatch(ctx context.Context, req service.BatchEvaluateRequest) (*service.BatchEvaluateResponse, error) {
	var resp service.BatchEvaluateResponse
	if err := c.do(ctx, "/v1/evaluate/batch", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// GetCached calls GET /v1/cache/{mode}/{hash} — one member's local cache
// entry, never a computation. A cold member answers an *APIError with
// code "cache_miss" (404).
func (c *Client) GetCached(ctx context.Context, mode string, hash uint64) (*service.CacheEntryResponse, error) {
	var resp service.CacheEntryResponse
	if err := c.doMethod(ctx, http.MethodGet, cachePath(mode, hash), nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func cachePath(mode string, hash uint64) string {
	return fmt.Sprintf("/v1/cache/%s/%016x", mode, hash)
}

// CacheTransport is the HTTP fleetcache.Transport: GET for peer fetch,
// PUT for owner-warming offers. It deliberately bypasses the Client
// retry machinery — the fleet cache runs its own tight deadline and
// per-peer breaker, and a retried peer fetch is worse than a local
// compute. The zero value is usable.
type CacheTransport struct {
	// HTTPClient overrides http.DefaultClient (for timeouts, transports,
	// httptest servers). The fleet cache passes an already-deadlined ctx,
	// so no client timeout is required.
	HTTPClient *http.Client
	// MaxBodyBytes caps entry bodies read into memory; 0 means 1 MiB —
	// far above any real entry (params plus four floats), so hitting it
	// means the peer is not speaking the protocol.
	MaxBodyBytes int64
}

var _ fleetcache.Transport = (*CacheTransport)(nil)

func (t *CacheTransport) client() *http.Client {
	if t.HTTPClient != nil {
		return t.HTTPClient
	}
	return http.DefaultClient
}

func (t *CacheTransport) maxBody() int64 {
	if t.MaxBodyBytes > 0 {
		return t.MaxBodyBytes
	}
	return 1 << 20
}

// FetchCached implements fleetcache.Transport. A 404 from the peer is
// fleetcache.ErrPeerMiss (cold cache — healthy); anything else non-200
// is a peer error the caller's breaker counts.
func (t *CacheTransport) FetchCached(ctx context.Context, peer, mode string, hash uint64) (fleetcache.Entry, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+cachePath(mode, hash), nil)
	if err != nil {
		return fleetcache.Entry{}, fmt.Errorf("client: cache fetch request: %w", err)
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return fleetcache.Entry{}, fmt.Errorf("client: cache fetch %s: %w", peer, err)
	}
	defer resp.Body.Close() //nolint:errcheck
	body, err := io.ReadAll(io.LimitReader(resp.Body, t.maxBody()))
	if err != nil {
		return fleetcache.Entry{}, fmt.Errorf("client: cache fetch %s: read: %w", peer, err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return fleetcache.Entry{}, fleetcache.ErrPeerMiss
	default:
		return fleetcache.Entry{}, fmt.Errorf("client: cache fetch %s: status %d: %s", peer, resp.StatusCode, body)
	}
	var e service.CacheEntryResponse
	if err := json.Unmarshal(body, &e); err != nil {
		return fleetcache.Entry{}, fmt.Errorf("client: cache fetch %s: decode: %w", peer, err)
	}
	return fleetcache.Entry{
		Mode:   mode,
		Hash:   hash,
		Params: e.Params,
		Breakdown: core.Breakdown{
			Overlay: e.Breakdown.Overlay,
			Recess:  e.Breakdown.Recess,
			Defect:  e.Breakdown.Defect,
			Total:   e.Breakdown.Total,
		},
	}, nil
}

// OfferCached implements fleetcache.Transport: PUT the computed entry to
// its owner. The owner re-verifies the hash; a 400 here means this
// member and the owner disagree on canonical hashing and is surfaced as
// an error.
func (t *CacheTransport) OfferCached(ctx context.Context, peer string, e fleetcache.Entry) error {
	body, err := json.Marshal(service.CachePutRequest{
		Params: e.Params,
		Breakdown: service.Breakdown{
			Overlay: e.Breakdown.Overlay,
			Recess:  e.Breakdown.Recess,
			Defect:  e.Breakdown.Defect,
			Total:   e.Breakdown.Total,
		},
	})
	if err != nil {
		return fmt.Errorf("client: cache offer: marshal: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, peer+cachePath(e.Mode, e.Hash), bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("client: cache offer request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client().Do(req)
	if err != nil {
		return fmt.Errorf("client: cache offer %s: %w", peer, err)
	}
	defer resp.Body.Close() //nolint:errcheck
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, t.maxBody()))
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("client: cache offer %s: status %d: %s", peer, resp.StatusCode, msg)
	}
	return nil
}
