package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"yap/internal/service"
)

// notLeader answers a 409 "not_leader" pointing at leaderURL.
func notLeader(w http.ResponseWriter, leaderURL string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusConflict)
	json.NewEncoder(w).Encode(service.ErrorResponse{Error: service.ErrorDetail{ //nolint:errcheck
		Code:      "not_leader",
		Message:   "this node is a follower",
		LeaderURL: leaderURL,
	}})
}

// TestSubmitFollowsLeaderRedirect: a submit that lands on a follower is
// retried against the leader the 409 named, within one SubmitJob call.
func TestSubmitFollowsLeaderRedirect(t *testing.T) {
	var leaderCalls atomic.Int64
	leader := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		leaderCalls.Add(1)
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"job-000001","state":"pending"}`)) //nolint:errcheck
	}))
	defer leader.Close()
	var followerCalls atomic.Int64
	follower := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		followerCalls.Add(1)
		notLeader(w, leader.URL)
	}))
	defer follower.Close()

	c, err := New(Config{BaseURL: follower.URL, Backoff: fastBackoff})
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.SubmitJob(context.Background(), service.JobSubmitRequest{Wafers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "job-000001" {
		t.Fatalf("job %+v", job)
	}
	if followerCalls.Load() != 1 || leaderCalls.Load() != 1 {
		t.Fatalf("follower %d leader %d calls, want 1 each", followerCalls.Load(), leaderCalls.Load())
	}
	// Later calls go straight to the learned leader.
	if _, err := c.SubmitJob(context.Background(), service.JobSubmitRequest{Wafers: 2}); err != nil {
		t.Fatal(err)
	}
	if followerCalls.Load() != 1 || leaderCalls.Load() != 2 {
		t.Fatalf("after learning: follower %d leader %d calls", followerCalls.Load(), leaderCalls.Load())
	}
}

// TestLeaderlessRedirectRetriesSameNode: a 409 without a leader URL
// (election in flight) keeps retrying the configured member until it
// answers — here, until it becomes the leader itself.
func TestLeaderlessRedirectRetriesSameNode(t *testing.T) {
	var calls atomic.Int64
	c, _ := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			notLeader(w, "")
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"job-000007","state":"pending"}`)) //nolint:errcheck
	}), nil)
	job, err := c.SubmitJob(context.Background(), service.JobSubmitRequest{Wafers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "job-000007" || calls.Load() != 3 {
		t.Fatalf("job %+v after %d calls", job, calls.Load())
	}
}

// TestDeadLeaderFallsBackToBaseURL: when the learned leader dies, the
// client forgets it and the configured member (now leading) serves.
func TestDeadLeaderFallsBackToBaseURL(t *testing.T) {
	deadLeader := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadLeader.Close() // immediately: every exchange is a transport error
	var redirected atomic.Bool
	c, _ := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !redirected.Load() {
			redirected.Store(true)
			notLeader(w, deadLeader.URL)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"job-000009","state":"pending"}`)) //nolint:errcheck
	}), func(cfg *Config) { cfg.HTTPClient = nil; cfg.MaxAttempts = 6 })
	job, err := c.SubmitJob(context.Background(), service.JobSubmitRequest{Wafers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "job-000009" {
		t.Fatalf("job %+v", job)
	}
	if got := c.baseURL(); got != c.cfg.BaseURL {
		t.Fatalf("dead leader still learned: %q", got)
	}
}

// TestNotLeaderSurfacesAfterExhaustion: a cluster that never resolves
// its election surfaces the typed APIError with the code intact.
func TestNotLeaderSurfacesAfterExhaustion(t *testing.T) {
	c, _ := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		notLeader(w, "")
	}), func(cfg *Config) { cfg.MaxAttempts = 2 })
	_, err := c.SubmitJob(context.Background(), service.JobSubmitRequest{Wafers: 2})
	if !errors.Is(err, ErrAttemptsExhausted) {
		t.Fatalf("err %v, want attempts exhausted", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "not_leader" {
		t.Fatalf("err %v, want wrapped not_leader APIError", err)
	}
}
