package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"yap/internal/resilience"
	"yap/internal/service"
)

// This file is the client half of GET /v1/jobs/{id}/stream: a live
// Server-Sent-Events watch over a job's convergence, resumable across
// dropped connections. Events are cumulative snapshots, so resume is
// lossless by construction — the client remembers the last SSE id it saw
// and replays it as Last-Event-ID on reconnect; the server answers with a
// fresh snapshot only if anything changed since (always, once the job is
// terminal, so a late or resumed watch can never hang). The consecutive-failure
// budget resets every time an event actually arrives, so a long-running
// watch survives any number of transient drops as long as progress is
// being made between them.

// StreamHandler observes one stream event. Returning a non-nil error
// aborts the stream immediately (no reconnect) and surfaces that error
// from StreamJob.
type StreamHandler func(ev *service.JobStreamEvent) error

// fnError marks a handler-requested abort so the retry loop can tell it
// apart from transport failures.
type fnError struct{ err error }

func (e *fnError) Error() string { return e.err.Error() }
func (e *fnError) Unwrap() error { return e.err }

// StreamJob watches job id's convergence stream until the job reaches a
// terminal state, calling fn (which may be nil) for every event, and
// returns the terminal event — whose Result, for a done job, is
// bit-identical to what GetJob reports. fromSeq resumes a previous watch:
// pass the Seq of the last event already seen (0 starts fresh). Transient
// failures — connection refused, a dropped connection mid-stream, 5xx —
// reconnect with Last-Event-ID after the usual backoff; permanent API
// errors (4xx) and handler errors surface immediately.
func (c *Client) StreamJob(ctx context.Context, id string, fromSeq int, fn StreamHandler) (*service.JobStreamEvent, error) {
	lastSeq := fromSeq
	failures := 0
	for {
		final, progressed, err := c.streamOnce(ctx, id, &lastSeq, fn)
		if err == nil {
			return final, nil
		}
		var fe *fnError
		if errors.As(err, &fe) {
			return nil, fmt.Errorf("client: job %s stream handler: %w", id, fe.err)
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("client: job %s stream context done: %w", id, errors.Join(ctx.Err(), err))
		}
		if !temporary(err) {
			return nil, err
		}
		if progressed {
			failures = 0
		}
		failures++
		if failures >= c.cfg.MaxAttempts {
			return nil, fmt.Errorf("client: job %s stream: %d consecutive attempts failed: %w",
				id, failures, errors.Join(ErrAttemptsExhausted, err))
		}
		delay := c.cfg.Backoff.Delay(failures - 1)
		if hint := retryAfterOf(err); hint > delay {
			delay = hint
		}
		if sleepErr := resilience.Sleep(ctx, delay); sleepErr != nil {
			return nil, fmt.Errorf("client: job %s stream: giving up while backing off: %w",
				id, errors.Join(sleepErr, err))
		}
	}
}

// streamOnce runs one SSE connection to completion: nil error means the
// terminal event arrived. progressed reports whether at least one event
// was decoded on this connection (it resets the caller's failure budget).
// lastSeq advances as events arrive so the next connection resumes.
func (c *Client) streamOnce(ctx context.Context, id string, lastSeq *int, fn StreamHandler) (final *service.JobStreamEvent, progressed bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL()+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return nil, false, fmt.Errorf("client: building stream request: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if *lastSeq > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(*lastSeq))
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("client: GET /v1/jobs/%s/stream: %w", id, err)
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxBodyBytes))
		return nil, false, decodeAPIError(resp, data)
	}

	br := bufio.NewReader(resp.Body)
	var data []string
	first := true
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			// The server ends the stream only after the terminal event,
			// which would have returned below — this EOF (or reset) is an
			// interruption; the caller reconnects from lastSeq.
			return nil, progressed, fmt.Errorf("client: job %s stream interrupted: %w", id, err)
		}
		line = strings.TrimRight(line, "\r\n")
		if first {
			// The SSE spec requires stripping one leading U+FEFF from the
			// stream; some proxies and middleware prepend it.
			line = strings.TrimPrefix(line, "\ufeff")
			first = false
		}
		switch {
		case line == "":
			if data == nil {
				continue
			}
			// Per the SSE contract a frame's data: lines concatenate with
			// newlines; our server emits one line per frame, but a proxy may
			// re-chunk.
			payload := strings.Join(data, "\n")
			data = nil
			var ev service.JobStreamEvent
			if err := json.Unmarshal([]byte(payload), &ev); err != nil {
				return nil, progressed, fmt.Errorf("client: decoding job %s stream event: %w", id, err)
			}
			*lastSeq = ev.Seq
			progressed = true
			if fn != nil {
				if err := fn(&ev); err != nil {
					return nil, progressed, &fnError{err}
				}
			}
			switch ev.State {
			case "done", "failed", "canceled":
				return &ev, progressed, nil
			}
		case strings.HasPrefix(line, ":"): // heartbeat comment
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		default:
			// id:/event: fields duplicate the payload's Seq and State;
			// unknown fields are ignored per the SSE contract.
		}
	}
}
