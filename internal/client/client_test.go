package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"yap/internal/resilience"
	"yap/internal/service"
)

// fastBackoff keeps test retries in the microsecond range.
var fastBackoff = resilience.Backoff{Base: time.Microsecond, Max: 10 * time.Microsecond}

func newTestClient(t *testing.T, h http.Handler, mut func(*Config)) (*Client, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	cfg := Config{BaseURL: ts.URL, HTTPClient: ts.Client(), Backoff: fastBackoff}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, ts
}

func TestNewValidatesBaseURL(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty BaseURL accepted")
	}
	if _, err := New(Config{BaseURL: "ftp://x"}); err == nil {
		t.Error("non-http BaseURL accepted")
	}
}

func TestRetriesOverloadedThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	c, _ := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":{"code":"overloaded","message":"busy","retry_after_ms":1}}`)) //nolint:errcheck
			return
		}
		w.Write([]byte(`{"status":"ok","uptime_seconds":1}`)) //nolint:errcheck
	}), nil)
	resp, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" {
		t.Errorf("status %q", resp.Status)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("server saw %d calls, want 3", n)
	}
}

func TestPermanentErrorDoesNotRetry(t *testing.T) {
	var calls atomic.Int64
	c, _ := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":{"code":"invalid_params","message":"nope"}}`)) //nolint:errcheck
	}), nil)
	_, err := c.Evaluate(context.Background(), service.EvaluateRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if apiErr.Code != "invalid_params" || apiErr.Status != http.StatusBadRequest || apiErr.Temporary() {
		t.Errorf("apiErr = %+v", apiErr)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("permanent error retried: %d calls", n)
	}
}

func TestAttemptsExhausted(t *testing.T) {
	var calls atomic.Int64
	c, _ := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":{"code":"internal","message":"boom"}}`)) //nolint:errcheck
	}), func(cfg *Config) { cfg.MaxAttempts = 3 })
	_, err := c.Health(context.Background())
	if !errors.Is(err, ErrAttemptsExhausted) {
		t.Fatalf("want ErrAttemptsExhausted, got %v", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "internal" {
		t.Errorf("exhaustion error lost the cause: %v", err)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("server saw %d calls, want 3", n)
	}
}

func TestRetryAfterHintIsHonored(t *testing.T) {
	var calls atomic.Int64
	var firstRetryGap time.Duration
	var last time.Time
	c, _ := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		if calls.Add(1) == 2 {
			firstRetryGap = now.Sub(last)
		}
		last = now
		if calls.Load() == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":{"code":"overloaded","message":"busy","retry_after_ms":50}}`)) //nolint:errcheck
			return
		}
		w.Write([]byte(`{"status":"ok","uptime_seconds":1}`)) //nolint:errcheck
	}), nil)
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The 50ms hint dominates the microsecond backoff schedule.
	if firstRetryGap < 45*time.Millisecond {
		t.Errorf("retry arrived after %v, want >= ~50ms per the server hint", firstRetryGap)
	}
}

func TestContextCancelsBackoff(t *testing.T) {
	c, _ := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"code":"overloaded","message":"busy","retry_after_ms":60000}}`)) //nolint:errcheck
	}), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Health(ctx)
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded in chain, got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("client ignored the context for %v", d)
	}
}

func TestClientBreakerOpensOnServerFailures(t *testing.T) {
	c, _ := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":{"code":"internal","message":"boom"}}`)) //nolint:errcheck
	}), func(cfg *Config) {
		cfg.MaxAttempts = 2
		cfg.Breaker = resilience.NewBreaker(resilience.BreakerConfig{Threshold: 2, Cooldown: time.Hour})
	})
	_, err := c.Health(context.Background())
	if err == nil {
		t.Fatal("want error")
	}
	// Two failures trip the breaker; the next call sheds client-side and
	// its retry loop waits on the hour-long cooldown until ctx gives up.
	if st := c.cfg.Breaker.State(); st != resilience.BreakerOpen {
		t.Errorf("breaker state %v, want open", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.Health(ctx); !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Errorf("want ErrBreakerOpen in chain from shed call, got %v", err)
	}
}

func TestSimulatePartialSurfaced(t *testing.T) {
	c, _ := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"params_hash":"ab","mode":"W2W","seed":1,"dies":100,"survived":90,
			"yield":0.9,"yield_lo":0.82,"yield_hi":0.95,"workers":2,
			"partial":true,"completed":10,"requested":1000}`)) //nolint:errcheck
	}), nil)
	resp, err := c.Simulate(context.Background(), service.SimulateRequest{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Partial || resp.Completed != 10 || resp.Requested != 1000 {
		t.Errorf("partial fields lost on the wire: %+v", resp)
	}
}
