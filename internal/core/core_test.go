package core

import (
	"math"
	"strings"
	"testing"

	"yap/internal/units"
)

func TestBaselineMatchesTableI(t *testing.T) {
	p := Baseline()
	checks := []struct {
		name      string
		got, want float64
	}{
		{"pitch", p.Pitch, 6e-6},
		{"top pad", p.TopPadDiameter, 2e-6},
		{"bottom pad", p.BottomPadDiameter, 3e-6},
		{"die width", p.DieWidth, 10e-3},
		{"wafer diameter", p.WaferDiameter, 300e-3},
		{"sigma1", p.RandomMisalignmentSigma, 5e-9},
		{"Tx", p.TranslationX, 5e-9},
		{"rotation", p.Rotation, 0.1e-6},
		{"warpage", p.Warpage, 10e-6},
		{"k_mag", p.KMag, 0.09},
		{"k_ca", p.ContactAreaFraction, 0.75},
		{"k_cd", p.CriticalDistanceFraction, 0.75},
		{"defect density", p.DefectDensity, 1000}, // 0.1 cm⁻² = 1000 m⁻²
		{"t0", p.MinParticleThickness, 1e-6},
		{"z", p.DefectShape, 3},
		{"recess", p.RecessTop, 10e-9},
		{"recess sigma", p.RecessSigma, 1e-9},
		{"roughness", p.Roughness, 1e-9},
		{"adhesion", p.AdhesionEnergy, 1.2},
		{"modulus", p.YoungModulus, 73e9},
		{"dielectric", p.DielectricThickness, 1.5e-6},
		{"k_peel", p.KPeel, 6.55e15},
		{"h0", p.H0, 75e-9},
		{"k_r", p.KRVoid, 0.18},   // 1.8e-4 µm^-1/2 = 0.18 m^-1/2
		{"k_r0", p.KR0Void, 0.23}, // 230 µm^1/2 = 0.23 m^1/2
		{"k_l", p.KLTail, 62},     // 6.2e-2 µm^-1/2 = 62 m^-1/2
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-9*math.Max(math.Abs(c.want), 1e-20) {
			t.Errorf("%s = %g, want %g", c.name, c.got, c.want)
		}
	}
}

func TestBaselineValid(t *testing.T) {
	if err := Baseline().Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero wafer", func(p *Params) { p.WaferDiameter = 0 }},
		{"negative sigma1", func(p *Params) { p.RandomMisalignmentSigma = -1 }},
		{"pad exceeds pitch", func(p *Params) { p.BottomPadDiameter = 7e-6 }},
		{"top pad over bottom", func(p *Params) { p.TopPadDiameter = 4e-6 }},
		{"zero die", func(p *Params) { p.DieWidth = 0 }},
		{"bad z", func(p *Params) { p.DefectShape = 1 }},
		{"anneal below ref", func(p *Params) { p.AnnealTemp = p.RefTemp - 1 }},
		{"die smaller than pitch", func(p *Params) { p.DieWidth, p.DieHeight = 1e-6, 1e-6 }},
		{"bad roughness", func(p *Params) { p.Roughness = -1e-9 }},
	}
	for _, m := range mutations {
		p := Baseline()
		m.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestDerivedQuantities(t *testing.T) {
	p := Baseline()
	if got := p.WaferRadius(); got != 0.15 {
		t.Errorf("wafer radius = %g", got)
	}
	if got := p.Magnification(); math.Abs(got-0.9e-6) > 1e-15 {
		t.Errorf("magnification = %g, want 0.9 ppm", got)
	}
	if got := p.CuDensity(); math.Abs(got-0.19635) > 1e-4 {
		t.Errorf("Cu density = %g, want 0.196", got)
	}
	if got := p.PadArray().Pads(); got != 1666*1666 {
		t.Errorf("pads = %d, want %d", got, 1666*1666)
	}
	n := p.Layout().DieCount()
	if n < 550 || n > 707 {
		t.Errorf("die count = %d", n)
	}
}

func TestWithPitchSizingRule(t *testing.T) {
	p := Baseline().WithPitch(1e-6)
	if p.Pitch != 1e-6 {
		t.Errorf("pitch = %g", p.Pitch)
	}
	if math.Abs(p.BottomPadDiameter-0.5e-6) > 1e-18 {
		t.Errorf("bottom pad = %g, want p/2", p.BottomPadDiameter)
	}
	if math.Abs(p.TopPadDiameter-1e-6/3) > 1e-18 {
		t.Errorf("top pad = %g, want p/3", p.TopPadDiameter)
	}
	// The rule reproduces Table I at 6 µm.
	q := Baseline().WithPitch(6e-6)
	if math.Abs(q.BottomPadDiameter-3e-6) > 1e-18 || math.Abs(q.TopPadDiameter-2e-6) > 1e-18 {
		t.Errorf("6 µm sizing: d1=%g d2=%g", q.TopPadDiameter, q.BottomPadDiameter)
	}
}

func TestWithDieAreaAndDensity(t *testing.T) {
	p := Baseline().WithDieArea(50 * units.SquareMillimeter)
	if math.Abs(p.DieWidth*p.DieHeight-50e-6) > 1e-12 {
		t.Errorf("die area = %g", p.DieWidth*p.DieHeight)
	}
	if p.DieWidth != p.DieHeight {
		t.Error("WithDieArea should produce a square die")
	}
	q := Baseline().WithDefectDensity(0.01 * units.PerSquareCentimeter)
	if q.DefectDensity != 100 {
		t.Errorf("defect density = %g", q.DefectDensity)
	}
}

func TestEvaluateW2WBaseline(t *testing.T) {
	b, err := Baseline().EvaluateW2W()
	if err != nil {
		t.Fatal(err)
	}
	// Baseline regime: overlay ≈ 1, recess ≈ 0.99, defect-limited ≈ 0.81.
	if b.Overlay < 0.999 {
		t.Errorf("Y_ovl = %g, want ≈ 1", b.Overlay)
	}
	if b.Recess < 0.98 || b.Recess > 1 {
		t.Errorf("Y_cr = %g, want ≈ 0.99", b.Recess)
	}
	if math.Abs(b.Defect-0.814) > 0.01 {
		t.Errorf("Y_df = %g, want ≈ 0.814", b.Defect)
	}
	want := b.Overlay * b.Recess * b.Defect
	if math.Abs(b.Total-want) > 1e-12 {
		t.Errorf("Total = %g, want product %g", b.Total, want)
	}
	if b.Limiter() != "defect" {
		t.Errorf("baseline limiter = %s, want defect", b.Limiter())
	}
}

func TestEvaluateD2WBaseline(t *testing.T) {
	b, err := Baseline().EvaluateD2W()
	if err != nil {
		t.Fatal(err)
	}
	if b.Overlay < 0.999 {
		t.Errorf("Y_ovl = %g", b.Overlay)
	}
	// D2W defect yield beats W2W (no tails).
	w, _ := Baseline().EvaluateW2W()
	if b.Defect <= w.Defect {
		t.Errorf("Y_df,D2W (%g) should exceed Y_df,W2W (%g)", b.Defect, w.Defect)
	}
}

func TestFinePitchRegimes(t *testing.T) {
	// §IV-B shapes: at 1 µm pitch the *additional* W2W loss vs 6 µm comes
	// from Cu recess (defect yield barely moves), D2W becomes
	// overlay-limited, and W2W total beats D2W total.
	p := Baseline().WithPitch(1e-6)
	w, err := p.EvaluateW2W()
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.EvaluateD2W()
	if err != nil {
		t.Fatal(err)
	}
	w6, err := Baseline().EvaluateW2W()
	if err != nil {
		t.Fatal(err)
	}
	if w6.Recess-w.Recess < 0.05 {
		t.Errorf("W2W recess yield should drop markedly at 1 µm: %g → %g", w6.Recess, w.Recess)
	}
	if math.Abs(w6.Defect-w.Defect) > 0.005 {
		t.Errorf("W2W defect yield should be pitch-insensitive: %g → %g", w6.Defect, w.Defect)
	}
	if w6.Overlay-w.Overlay > 0.01 {
		t.Errorf("W2W overlay stays near 1 at 1 µm: %g → %g", w6.Overlay, w.Overlay)
	}
	if d.Limiter() != "overlay" {
		t.Errorf("D2W fine-pitch limiter = %s (%v), want overlay", d.Limiter(), d)
	}
	if w.Total <= d.Total {
		t.Errorf("W2W (%g) should beat D2W (%g) at fine pitch", w.Total, d.Total)
	}
	// Overlay loss in D2W must be substantial, not cosmetic.
	if d.Overlay > 0.9 {
		t.Errorf("D2W fine-pitch overlay yield = %g, expected visible loss", d.Overlay)
	}
}

func TestEvaluateRejectsInvalid(t *testing.T) {
	p := Baseline()
	p.DefectShape = 1
	if _, err := p.EvaluateW2W(); err == nil {
		t.Error("EvaluateW2W accepted invalid params")
	}
	if _, err := p.EvaluateD2W(); err == nil {
		t.Error("EvaluateD2W accepted invalid params")
	}
	if _, _, err := p.SystemYield(1e-3); err == nil {
		t.Error("SystemYield accepted invalid params")
	}
}

func TestSystemYield(t *testing.T) {
	p := Baseline() // 100 mm² chiplets
	y, n, err := p.SystemYield(1000 * units.SquareMillimeter)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("chiplets = %d, want 10", n)
	}
	d, _ := p.EvaluateD2W()
	want := math.Pow(d.Total, 10)
	if math.Abs(y-want) > 1e-12 {
		t.Errorf("Y_sys = %g, want %g", y, want)
	}
}

func TestSystemYieldGrowsWithChipletSize(t *testing.T) {
	// §IV-C: even though Y_D2W decreases with chiplet size, fewer chiplets
	// per system makes Y_sys increase.
	sys := 1000 * units.SquareMillimeter
	var prev float64 = -1
	for _, area := range []float64{10, 50, 100} {
		p := Baseline().WithDieArea(area * units.SquareMillimeter)
		y, _, err := p.SystemYield(sys)
		if err != nil {
			t.Fatal(err)
		}
		if y < prev {
			t.Errorf("Y_sys decreased at %g mm²: %g < %g", area, y, prev)
		}
		prev = y
	}
}

func TestChipletSizeDecreasesDieYield(t *testing.T) {
	// §IV-C: bonding yield drops with chiplet size for both styles.
	var prevW, prevD float64 = 2, 2
	for _, area := range []float64{10, 50, 100} {
		p := Baseline().WithDieArea(area * units.SquareMillimeter)
		w, err := p.EvaluateW2W()
		if err != nil {
			t.Fatal(err)
		}
		d, err := p.EvaluateD2W()
		if err != nil {
			t.Fatal(err)
		}
		if w.Total >= prevW {
			t.Errorf("W2W yield did not drop at %g mm²", area)
		}
		if d.Total >= prevD {
			t.Errorf("D2W yield did not drop at %g mm²", area)
		}
		prevW, prevD = w.Total, d.Total
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{Overlay: 0.9, Recess: 0.8, Defect: 0.7, Total: 0.504}
	s := b.String()
	for _, frag := range []string{"Y_ovl=0.9", "Y_cr=0.8", "Y_df=0.7", "Y=0.504"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestBreakdownLimiter(t *testing.T) {
	cases := []struct {
		b    Breakdown
		want string
	}{
		{Breakdown{Overlay: 0.5, Recess: 0.9, Defect: 0.9}, "overlay"},
		{Breakdown{Overlay: 0.9, Recess: 0.5, Defect: 0.9}, "recess"},
		{Breakdown{Overlay: 0.9, Recess: 0.9, Defect: 0.5}, "defect"},
	}
	for _, c := range cases {
		if got := c.b.Limiter(); got != c.want {
			t.Errorf("Limiter(%v) = %s, want %s", c.b, got, c.want)
		}
	}
}
