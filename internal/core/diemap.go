package core

import (
	"math"

	"yap/internal/overlay"
	"yap/internal/wafer"
)

// DieYield is the per-die resolved W2W yield prediction: Eq. 8 before its
// final average, with position-dependent defect exposure. It quantifies
// the paper's §IV-B observation that "chiplets closer to the wafer center
// are more likely to survive".
type DieYield struct {
	// Die is the floorplan site.
	Die wafer.Die
	// Overlay is the die's POS under the systematic distortion field
	// (Eq. 7) — the radially growing magnification makes this fall toward
	// the edge.
	Overlay float64
	// Recess is Y_cr (position-independent; Eq. 14).
	Recess float64
	// Defect is the die's defect survival with the local particle density
	// (position-dependent under radial clustering, uniform otherwise).
	Defect float64
	// Total is the product.
	Total float64
}

// Radius returns the die center's distance from the wafer center.
func (d DieYield) Radius() float64 {
	c := d.Die.Center()
	return math.Hypot(c.X, c.Y)
}

// W2WDieYields returns the per-die yield map of the W2W model. Averaging
// the Total column reproduces EvaluateW2W's product up to the correlation
// between mechanisms across positions (exactly, when defects are uniform).
func (p Params) W2WDieYields() ([]DieYield, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	layout := p.Layout()
	dies := layout.Dies()
	pads := p.PadArray()
	ov := p.OverlayModel()
	delta := ov.Pads.MaxMisalignment()
	recessY := p.RecessParams().DieYield(pads.Pads())
	dp := p.DefectParams()

	// Split Eq. 20 into its position-independent pieces so the local
	// density can scale the anchor term per die. The tail term mixes
	// contributions from particles at all radii; it is kept at its
	// wafer-average (the die-resolved tail would need the full 2-D
	// integral the simulator effectively performs).
	anchorArea := p.DieWidth * p.DieHeight
	z := p.DefectShape
	tailTerm := 8 * dp.Density * (z - 1) / (3 * math.Pi * (2*z - 3)) *
		(p.DieWidth + p.DieHeight) * dp.TailKnee() * dp.ClusteringTailFactor()

	out := make([]DieYield, len(dies))
	for i, d := range dies {
		rect := pads.PadArrayRectOn(d)
		c := d.Rect.Center()
		localDensity := dp.DensityAt(math.Hypot(c.X, c.Y))
		lambda := localDensity*anchorArea + tailTerm
		dy := DieYield{
			Die:     d,
			Overlay: overlay.DiePOS(ov.Dist, rect, delta, ov.Sigma1),
			Recess:  recessY,
			Defect:  math.Exp(-lambda),
		}
		dy.Total = dy.Overlay * dy.Recess * dy.Defect
		out[i] = dy
	}
	return out, nil
}

// RadialProfile bins per-die yields by die-center radius and returns the
// bin centers (m) and mean total yields — the radial yield falloff curve.
func RadialProfile(dies []DieYield, bins int, waferRadius float64) (centers, yields []float64) {
	if bins < 1 || len(dies) == 0 {
		return nil, nil
	}
	sums := make([]float64, bins)
	counts := make([]int, bins)
	for _, d := range dies {
		b := int(d.Radius() / waferRadius * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		sums[b] += d.Total
		counts[b]++
	}
	for b := 0; b < bins; b++ {
		if counts[b] == 0 {
			continue
		}
		centers = append(centers, (float64(b)+0.5)/float64(bins)*waferRadius)
		yields = append(yields, sums[b]/float64(counts[b]))
	}
	return centers, yields
}
