// Package core combines the YAP overlay, Cu-recess and particle-defect
// submodels into the paper's full bonding-yield model: Y_W2W (Eq. 22) and
// Y_D2W (Eq. 28), with the Table I baseline parameter set and the derived
// quantities (pad counts, Cu density, distortion field) each evaluation
// needs. This package is the paper's primary contribution; the submodels it
// composes live in internal/overlay, internal/recess and internal/defect.
package core

import (
	"fmt"
	"math"

	"yap/internal/contact"
	"yap/internal/defect"
	"yap/internal/layout"
	"yap/internal/overlay"
	"yap/internal/recess"
	"yap/internal/units"
	"yap/internal/wafer"
)

// Params is a complete hybrid-bonding process description. All fields are
// SI (meters, pascals, kelvins, m⁻²); the Baseline constructor loads the
// paper's Table I values.
type Params struct {
	// --- Geometry ---

	// Pitch is the Cu pad pitch p.
	Pitch float64
	// TopPadDiameter (d₁) and BottomPadDiameter (d₂) are the pad sizes;
	// the top pad is the smaller one.
	TopPadDiameter, BottomPadDiameter float64
	// DieWidth and DieHeight are the chiplet dimensions a and b.
	DieWidth, DieHeight float64
	// WaferDiameter is the full wafer diameter (300 mm baseline).
	WaferDiameter float64
	// EdgeExclusion is the unusable outer annulus (may be zero).
	EdgeExclusion float64

	// --- Overlay (§III-A) ---

	// RandomMisalignmentSigma is σ₁, the random overlay error std dev.
	RandomMisalignmentSigma float64
	// TranslationX and TranslationY are the systematic translations T_x, T_y.
	TranslationX, TranslationY float64
	// Rotation is the systematic rotation α (rad), referenced to the wafer
	// radius.
	Rotation float64
	// Warpage is the bonded-wafer warpage B; magnification follows Eq. 2.
	Warpage float64
	// KMag is k_mag of Eq. 2 (m⁻¹).
	KMag float64
	// ContactAreaFraction (k_ca) and CriticalDistanceFraction (k_cd) are
	// the pad-survival constraints of Eq. 6.
	ContactAreaFraction, CriticalDistanceFraction float64
	// PlacementTranslationSigma, PlacementRotationSigma and
	// PlacementWarpageSigma are the die-to-die spreads of the systematic
	// terms for D2W placement (Table I starred std values).
	PlacementTranslationSigma float64
	PlacementRotationSigma    float64
	PlacementWarpageSigma     float64

	// --- Cu recess (§III-B) ---

	// RecessTop and RecessBottom are the mean pad recess depths (positive
	// = below the dielectric plane).
	RecessTop, RecessBottom float64
	// RecessSigma is the per-pad height standard deviation.
	RecessSigma float64
	// RecessWaferSigma is the optional common-mode drift of the summed
	// mean pad height between bond events (CMP run-to-run variation;
	// extension — zero is the paper's assumption).
	RecessWaferSigma float64
	// Roughness is σ_z, the asperity-height std dev of the dielectric.
	Roughness float64
	// AsperityCapRadius is R_z of the asperity model.
	AsperityCapRadius float64
	// AdhesionEnergy is the SiO₂–SiO₂ full-contact bonding energy w (J/m²).
	AdhesionEnergy float64
	// YoungModulus and PoissonRatio describe the dielectric elastically.
	YoungModulus, PoissonRatio float64
	// DielectricThickness is t_d.
	DielectricThickness float64
	// AnnealTemp and RefTemp bound the PBA temperature ramp (K).
	AnnealTemp, RefTemp float64
	// ExpansionRate is k_exp (m/K), the per-pad Cu height gain per kelvin.
	ExpansionRate float64
	// KPeel and H0 are the peeling-stress fit constants of Eq. 10.
	KPeel, H0 float64

	// --- Particle defects (§III-C) ---

	// DefectDensity is D_t (m⁻²).
	DefectDensity float64
	// MinParticleThickness is t₀.
	MinParticleThickness float64
	// DefectShape is the Glang exponent z.
	DefectShape float64
	// KRVoid (k_r), KR0Void (k_r0) and KLTail (k_l) are the void-size fit
	// constants of Eq. 15–16.
	KRVoid, KR0Void, KLTail float64
	// RadialDefectClustering is the optional edge-weighting coefficient
	// k_c of the particle density profile D(r) ∝ 1 + k_c·(r/R)²
	// (extension after Singh [7]; zero — the paper's assumption — keeps
	// particles uniform).
	RadialDefectClustering float64

	// --- Pad layout (YAP+ extension) ---

	// PadLayout optionally partitions the die into heterogeneous pad
	// regions (YAP+; internal/layout), each with its own pitch and pad
	// geometry — region fields left zero inherit the die-level values
	// above. nil — the default — keeps the paper's single uniform grid,
	// and is equivalent to layout.Uniform over the die (pinned
	// bit-identical by property tests). Serialized as "layout" on the
	// wire; omitted when nil so legacy parameter JSON round-trips
	// byte-stable. (The field is not named Layout because the wafer
	// floorplan accessor below already claims that name.)
	PadLayout *layout.Layout `json:"layout,omitempty"`
}

// Baseline returns the paper's Table I parameter set (mean values; the
// starred spreads appear as the Placement*Sigma fields and as the
// validation sampler's ranges). The PBA constants absent from Table I
// (anneal/reference temperature, expansion rate, asperity cap radius,
// Poisson ratio) use the documented DESIGN.md §2 values.
func Baseline() Params {
	return Params{
		Pitch:             6 * units.Micrometer,
		TopPadDiameter:    2 * units.Micrometer,
		BottomPadDiameter: 3 * units.Micrometer,
		DieWidth:          10 * units.Millimeter,
		DieHeight:         10 * units.Millimeter,
		WaferDiameter:     300 * units.Millimeter,
		EdgeExclusion:     0,

		RandomMisalignmentSigma:   5 * units.Nanometer,
		TranslationX:              5 * units.Nanometer,
		TranslationY:              5 * units.Nanometer,
		Rotation:                  0.1 * units.Microradian,
		Warpage:                   10 * units.Micrometer,
		KMag:                      0.09, // m⁻¹, Eq. 2 ⇒ E = 0.9 ppm at B = 10 µm
		ContactAreaFraction:       0.75,
		CriticalDistanceFraction:  0.75,
		PlacementTranslationSigma: 10 * units.Nanometer,
		PlacementRotationSigma:    0.05 * units.Microradian,
		PlacementWarpageSigma:     3 * units.Micrometer,

		RecessTop:           10 * units.Nanometer,
		RecessBottom:        10 * units.Nanometer,
		RecessSigma:         1 * units.Nanometer,
		Roughness:           1 * units.Nanometer,
		AsperityCapRadius:   1 * units.Micrometer,
		AdhesionEnergy:      1.2,
		YoungModulus:        73 * units.Gigapascal,
		PoissonRatio:        0.17,
		DielectricThickness: 1.5 * units.Micrometer,
		AnnealTemp:          units.FromCelsius(300),
		RefTemp:             units.FromCelsius(25),
		ExpansionRate:       0.0515 * units.NanometerPerK,
		KPeel:               6.55e15,
		H0:                  75 * units.Nanometer,

		DefectDensity:        0.1 * units.PerSquareCentimeter,
		MinParticleThickness: 1 * units.Micrometer,
		DefectShape:          3,
		KRVoid:               1.8e-4 * units.PerSquareRootUm,
		KR0Void:              230 * units.SquareRootUm,
		KLTail:               6.2e-2 * units.PerSquareRootUm,
	}
}

// Validate checks the parameter set for physical consistency, delegating to
// each submodel's validator.
func (p Params) Validate() error {
	if p.WaferDiameter <= 0 {
		return fmt.Errorf("core: non-positive wafer diameter %g", p.WaferDiameter)
	}
	if p.RandomMisalignmentSigma < 0 {
		return fmt.Errorf("core: negative random misalignment sigma %g", p.RandomMisalignmentSigma)
	}
	if err := p.Layout().Validate(); err != nil {
		return err
	}
	if err := p.PadGeometry().Validate(); err != nil {
		return err
	}
	if err := p.RecessParams().Validate(); err != nil {
		return err
	}
	if err := p.DefectParams().Validate(); err != nil {
		return err
	}
	if p.PadLayout != nil {
		// Region validation subsumes the die-level pads-fit check below:
		// every region must hold at least one pad at its resolved pitch,
		// while the die-level pitch only serves as the inheritance default.
		if err := p.PadLayout.Validate(p.DieWidth, p.DieHeight, p.PadGeometry()); err != nil {
			return err
		}
	} else if p.PadArray().Pads() == 0 {
		return fmt.Errorf("core: no pads fit a %s x %s die at pitch %s",
			units.FormatMeters(p.DieWidth), units.FormatMeters(p.DieHeight), units.FormatMeters(p.Pitch))
	}
	// Guard the W2W die enumeration: a die much smaller than the wafer
	// explodes the floorplan (a 20 µm die on a 300 mm wafer would
	// enumerate >10⁸ sites). Real chiplets are ≥ fractions of mm²; reject
	// layouts past a generous ceiling instead of hanging.
	const maxDies = 5_000_000
	gross := math.Pi * p.WaferRadius() * p.WaferRadius() / (p.DieWidth * p.DieHeight)
	if gross > maxDies {
		return fmt.Errorf("core: ~%.2g die sites on the wafer exceed the %d limit (die too small for this wafer)",
			gross, maxDies)
	}
	return nil
}

// WaferRadius returns the wafer radius R.
func (p Params) WaferRadius() float64 { return p.WaferDiameter / 2 }

// Layout returns the wafer/die floorplan.
func (p Params) Layout() wafer.Layout {
	return wafer.Layout{
		WaferRadius:   p.WaferRadius(),
		EdgeExclusion: p.EdgeExclusion,
		DieWidth:      p.DieWidth,
		DieHeight:     p.DieHeight,
	}
}

// PadArray returns the per-die pad grid at the process pitch.
func (p Params) PadArray() wafer.PadArray {
	return wafer.PadArrayFor(p.DieWidth, p.DieHeight, p.Pitch)
}

// PadGeometry returns the overlay pad-geometry submodel inputs.
func (p Params) PadGeometry() overlay.PadGeometry {
	return overlay.PadGeometry{
		Pitch:                    p.Pitch,
		TopDiameter:              p.TopPadDiameter,
		BottomDiameter:           p.BottomPadDiameter,
		ContactAreaFraction:      p.ContactAreaFraction,
		CriticalDistanceFraction: p.CriticalDistanceFraction,
	}
}

// Magnification returns E = k_mag·B (Eq. 2).
func (p Params) Magnification() float64 {
	return overlay.MagnificationFromWarpage(p.KMag, p.Warpage)
}

// Distortion returns the wafer-level systematic distortion field.
func (p Params) Distortion() overlay.Distortion {
	return overlay.Distortion{
		TX:            p.TranslationX,
		TY:            p.TranslationY,
		Rotation:      p.Rotation,
		Magnification: p.Magnification(),
	}
}

// OverlayModel returns the overlay submodel.
func (p Params) OverlayModel() overlay.Model {
	return overlay.Model{
		Pads:   p.PadGeometry(),
		Dist:   p.Distortion(),
		Sigma1: p.RandomMisalignmentSigma,
	}
}

// PlacementSpread returns the D2W die-to-die systematic spread.
func (p Params) PlacementSpread() overlay.PlacementSpread {
	return overlay.PlacementSpread{
		TXSigma:            p.PlacementTranslationSigma,
		TYSigma:            p.PlacementTranslationSigma,
		RotationSigma:      p.PlacementRotationSigma,
		MagnificationSigma: overlay.MagnificationFromWarpage(p.KMag, p.PlacementWarpageSigma),
	}
}

// Surface returns the dielectric surface description for the contact model.
func (p Params) Surface() contact.Surface {
	return contact.Surface{
		SigmaZ:         p.Roughness,
		CapRadius:      p.AsperityCapRadius,
		YoungModulus:   p.YoungModulus,
		PoissonRatio:   p.PoissonRatio,
		AdhesionEnergy: p.AdhesionEnergy,
		Thickness:      p.DielectricThickness,
	}
}

// CuDensity returns D_Cu, the Cu pattern density of the bottom-pad array.
func (p Params) CuDensity() float64 {
	return recess.CuPatternDensity(p.BottomPadDiameter, p.Pitch)
}

// RecessParams returns the Cu-recess submodel inputs.
func (p Params) RecessParams() recess.Params {
	return recess.Params{
		MeanRecessTop:    p.RecessTop,
		MeanRecessBottom: p.RecessBottom,
		SigmaTop:         p.RecessSigma,
		SigmaBottom:      p.RecessSigma,
		WaferSigma:       p.RecessWaferSigma,
		AnnealTemp:       p.AnnealTemp,
		RefTemp:          p.RefTemp,
		ExpansionRate:    p.ExpansionRate,
		KPeel:            p.KPeel,
		H0:               p.H0,
		CuDensity:        p.CuDensity(),
		Surface:          p.Surface(),
	}
}

// DefectParams returns the particle-defect submodel inputs.
func (p Params) DefectParams() defect.Params {
	return defect.Params{
		Density:          p.DefectDensity,
		MinThickness:     p.MinParticleThickness,
		Shape:            p.DefectShape,
		KR:               p.KRVoid,
		KR0:              p.KR0Void,
		KL:               p.KLTail,
		WaferRadius:      p.WaferRadius(),
		RadialClustering: p.RadialDefectClustering,
	}
}

// EffectiveLayout returns the pad layout in effect: the explicit PadLayout
// when set, else the single full-die uniform region carrying the die-level
// pad geometry — the layout.Uniform identity of the legacy grid.
func (p Params) EffectiveLayout() layout.Layout {
	if p.PadLayout != nil {
		return *p.PadLayout
	}
	return layout.Uniform(p.DieWidth, p.DieHeight, p.PadGeometry())
}

// RegionGrids resolves the effective pad layout into per-region pad grids
// with die-level inheritance applied.
func (p Params) RegionGrids() []layout.RegionGrid {
	return p.EffectiveLayout().Grids(p.PadGeometry())
}

// TotalPads returns the pad count of the effective layout — PadArray's
// count for the legacy uniform grid, the per-region sum otherwise.
func (p Params) TotalPads() int {
	if p.PadLayout == nil {
		return p.PadArray().Pads()
	}
	return p.PadLayout.TotalPads(p.PadGeometry())
}

// RegionRecessParams returns the Cu-recess submodel inputs for one region's
// resolved pad geometry: identical to RecessParams except the Cu pattern
// density follows the region's bottom-pad diameter and pitch (D_Cu is the
// only recess input the pad layout touches).
func (p Params) RegionRecessParams(g overlay.PadGeometry) recess.Params {
	rp := p.RecessParams()
	rp.CuDensity = recess.CuPatternDensity(g.BottomDiameter, g.Pitch)
	return rp
}

// Equal reports whether p and q describe the same parameter set, pad
// layout included. Params stopped being ==-comparable when it grew the
// PadLayout pointer (pointer identity is not value identity), so callers
// that compared parameter sets with == — the service cache's hash-collision
// check — use Equal instead.
func (p Params) Equal(q Params) bool {
	pl, ql := p.PadLayout, q.PadLayout
	p.PadLayout, q.PadLayout = nil, nil
	if p != q {
		return false
	}
	if (pl == nil) != (ql == nil) {
		return false
	}
	return pl == nil || pl.Equal(*ql)
}

// WithPitch returns a copy of p at a new pitch with the case-study pad
// sizing rule of §IV-B: bottom pad d₂ = p/2, top pad d₁ = p/3 (the
// baseline's 2:3 top-to-bottom ratio).
func (p Params) WithPitch(pitch float64) Params {
	q := p
	q.Pitch = pitch
	q.BottomPadDiameter = pitch / 2
	q.TopPadDiameter = pitch / 3
	return q
}

// WithDieArea returns a copy of p with a square die of the given area.
func (p Params) WithDieArea(area float64) Params {
	q := p
	side := math.Sqrt(area)
	q.DieWidth = side
	q.DieHeight = side
	return q
}

// WithDefectDensity returns a copy of p with a new particle density (m⁻²).
func (p Params) WithDefectDensity(density float64) Params {
	q := p
	q.DefectDensity = density
	return q
}
