package core

import (
	"fmt"
	"math"

	"yap/internal/layout"
	"yap/internal/overlay"
)

// Breakdown is the per-mechanism yield decomposition of one evaluation.
// Total is the product of the three mechanism terms (Eq. 22 / Eq. 28 under
// the paper's independence assumption).
type Breakdown struct {
	// Overlay is Y_ovl (Eq. 8 for W2W, Eq. 23 averaged over placements
	// for D2W).
	Overlay float64
	// Recess is Y_cr (Eq. 14, identical for both bonding styles).
	Recess float64
	// Defect is Y_df (Eq. 21 for W2W, Eq. 27 for D2W).
	Defect float64
	// Total is the combined bonding yield.
	Total float64
}

func (b Breakdown) String() string {
	return fmt.Sprintf("Y_ovl=%.6f Y_cr=%.6f Y_df=%.6f Y=%.6f",
		b.Overlay, b.Recess, b.Defect, b.Total)
}

// Limiter names the mechanism contributing the largest yield loss.
func (b Breakdown) Limiter() string {
	switch math.Min(b.Overlay, math.Min(b.Recess, b.Defect)) {
	case b.Overlay:
		return "overlay"
	case b.Recess:
		return "recess"
	default:
		return "defect"
	}
}

// EvaluateW2W evaluates the full W2W bonding-yield model (Eq. 22):
// Y_W2W = Y_ovl,W2W · Y_cr,W2W · Y_df,W2W. With a PadLayout set, every
// mechanism generalizes per region (YAP+): the overlay term products
// per-region pad survival under the shared distortion field, the recess
// term products per-region die yields at each region's Cu density, and the
// defect term sums per-region kill rates Λ before the Poisson exponent.
func (p Params) EvaluateW2W() (Breakdown, error) {
	if err := p.Validate(); err != nil {
		return Breakdown{}, err
	}
	var b Breakdown
	if p.PadLayout == nil {
		b = Breakdown{
			Overlay: p.OverlayModel().WaferYieldW2W(p.Layout()),
			Recess:  p.RecessParams().DieYield(p.PadArray().Pads()),
			Defect:  p.DefectParams().YieldW2W(p.DieWidth, p.DieHeight),
		}
	} else {
		grids := p.RegionGrids()
		dp := p.DefectParams()
		var lsum float64
		for _, g := range grids {
			// Per-region critical outline, mirroring the legacy term's use
			// of the die outline for the whole-die region.
			lsum += dp.LambdaW2W(g.Rect.Width(), g.Rect.Height())
		}
		b = Breakdown{
			Overlay: p.OverlayModel().WaferYieldW2WRegions(p.Layout(), overlayRegions(grids)),
			Recess:  p.regionRecessYield(grids),
			Defect:  math.Exp(-lsum),
		}
	}
	b.Total = b.Overlay * b.Recess * b.Defect
	return b, nil
}

// EvaluateD2W evaluates the full D2W bonding-yield model (Eq. 28):
// Y_D2W = Y_ovl,D2W · Y_cr,D2W · Y_df,D2W. The overlay term averages the
// die placement variation; the rotation/magnification reference radius is
// the wafer radius at which Table I characterizes them. With a PadLayout
// set the mechanisms generalize per region as in EvaluateW2W, the D2W
// defect term summing each region's main-void kill rate at its own pitch,
// pad size and pad count.
func (p Params) EvaluateD2W() (Breakdown, error) {
	if err := p.Validate(); err != nil {
		return Breakdown{}, err
	}
	var b Breakdown
	if p.PadLayout == nil {
		b = Breakdown{
			Overlay: p.OverlayModel().ExpectedDieYieldD2W(
				p.DieWidth, p.DieHeight, p.WaferRadius(), p.PlacementSpread()),
			Recess: p.RecessParams().DieYield(p.PadArray().Pads()),
			Defect: p.DefectParams().YieldD2W(
				p.DieWidth, p.DieHeight, p.Pitch, p.TopPadDiameter/2, p.PadArray().Pads()),
		}
	} else {
		grids := p.RegionGrids()
		dp := p.DefectParams()
		var lsum float64
		for _, g := range grids {
			lsum += dp.LambdaD2W(g.Rect.Width(), g.Rect.Height(),
				g.Geometry.Pitch, g.Geometry.TopDiameter/2, g.Grid.Pads())
		}
		b = Breakdown{
			Overlay: p.OverlayModel().ExpectedDieYieldD2WRegions(
				p.DieWidth, p.DieHeight, p.WaferRadius(), p.PlacementSpread(), overlayRegions(grids)),
			Recess: p.regionRecessYield(grids),
			Defect: math.Exp(-lsum),
		}
	}
	b.Total = b.Overlay * b.Recess * b.Defect
	return b, nil
}

// overlayRegions converts resolved region grids into the overlay model's
// view: each region's pad-array rectangle plus its geometry's δ bound.
func overlayRegions(grids []layout.RegionGrid) []overlay.PadRegion {
	regions := make([]overlay.PadRegion, len(grids))
	for i, g := range grids {
		regions[i] = overlay.PadRegion{Rect: g.Grid.Rect, Delta: g.Geometry.MaxMisalignment()}
	}
	return regions
}

// regionRecessYield returns Y_cr for a resolved layout: the product of
// per-region all-pads-pass probabilities, each at the region's Cu pattern
// density (identical to the uniform term for a single full-die region).
func (p Params) regionRecessYield(grids []layout.RegionGrid) float64 {
	y := 1.0
	for _, g := range grids {
		y *= p.RegionRecessParams(g.Geometry).DieYield(g.Grid.Pads())
	}
	return y
}

// SystemYield returns Y_sys = Y_D2W^n for a 2.5D system assembled from n
// chiplets with no redundancy (§IV-C), where n = ⌈systemArea / die area⌉.
// It also returns the chiplet count used.
func (p Params) SystemYield(systemArea float64) (float64, int, error) {
	b, err := p.EvaluateD2W()
	if err != nil {
		return 0, 0, err
	}
	dieArea := p.DieWidth * p.DieHeight
	if dieArea <= 0 {
		return 0, 0, fmt.Errorf("core: non-positive die area %g", dieArea)
	}
	n := int(math.Ceil(systemArea / dieArea))
	if n < 1 {
		n = 1
	}
	return math.Pow(b.Total, float64(n)), n, nil
}
