package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Params serializes to plain JSON with SI values; this file adds the
// checked load/save helpers the CLI tools use so that process descriptions
// can be versioned alongside designs.

// ReadParams decodes a parameter set from JSON. Unknown fields are
// rejected (catching typos in hand-written process files), missing fields
// default to the Table I baseline, and the result is validated before
// being returned.
func ReadParams(r io.Reader) (Params, error) {
	return DecodeParams(Baseline(), r)
}

// DecodeParams decodes a partial parameter set from JSON over the given
// defaults: named fields override, unnamed fields keep the default value,
// unknown fields are rejected, and the merged result is validated. This
// is the decode path shared by the CLI config loaders (defaults =
// Baseline) and the service layer (defaults = the daemon's configured
// process).
func DecodeParams(defaults Params, r io.Reader) (Params, error) {
	p := defaults
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Params{}, fmt.Errorf("core: decode params: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Params{}, fmt.Errorf("core: loaded params invalid: %w", err)
	}
	return p, nil
}

// LoadParams reads a parameter set from a JSON file. Decode and
// validation failures carry the file path so CLI and service error text
// names the offending config.
func LoadParams(path string) (Params, error) {
	f, err := os.Open(path)
	if err != nil {
		return Params{}, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	p, err := ReadParams(f)
	if err != nil {
		return Params{}, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// WriteParams encodes the parameter set as indented JSON.
func (p Params) WriteParams(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		return fmt.Errorf("core: encode params: %w", err)
	}
	return nil
}

// SaveParams writes the parameter set to a JSON file.
func (p Params) SaveParams(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	if err := p.WriteParams(f); err != nil {
		return err
	}
	return f.Close()
}
