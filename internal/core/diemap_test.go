package core

import (
	"math"
	"testing"

	"yap/internal/units"
)

func TestW2WDieYieldsConsistentWithWaferAverage(t *testing.T) {
	p := Baseline()
	dies, err := p.W2WDieYields()
	if err != nil {
		t.Fatal(err)
	}
	if len(dies) != p.Layout().DieCount() {
		t.Fatalf("dies = %d, want %d", len(dies), p.Layout().DieCount())
	}
	var sumOverlay, sumTotal float64
	for _, d := range dies {
		for name, v := range map[string]float64{
			"overlay": d.Overlay, "recess": d.Recess, "defect": d.Defect, "total": d.Total,
		} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("%s yield %g outside [0,1]", name, v)
			}
		}
		if math.Abs(d.Total-d.Overlay*d.Recess*d.Defect) > 1e-12 {
			t.Fatal("total is not the product")
		}
		sumOverlay += d.Overlay
		sumTotal += d.Total
	}
	model, err := p.EvaluateW2W()
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 8: the wafer overlay yield is exactly the per-die average.
	if got := sumOverlay / float64(len(dies)); math.Abs(got-model.Overlay) > 1e-9 {
		t.Errorf("mean per-die overlay %g vs Eq. 8 %g", got, model.Overlay)
	}
	// With uniform defects, the per-die totals average to the wafer total.
	if got := sumTotal / float64(len(dies)); math.Abs(got-model.Total) > 1e-6 {
		t.Errorf("mean per-die total %g vs model %g", got, model.Total)
	}
}

func TestW2WDieYieldsEdgeFalloff(t *testing.T) {
	// At sub-µm pitch the systematic magnification kills edge dies first:
	// the innermost-bin yield must exceed the outermost-bin yield.
	p := Baseline().WithPitch(0.8 * units.Micrometer)
	dies, err := p.W2WDieYields()
	if err != nil {
		t.Fatal(err)
	}
	centers, yields := RadialProfile(dies, 6, p.WaferRadius())
	if len(centers) < 3 {
		t.Fatalf("profile too sparse: %d bins", len(centers))
	}
	if !(yields[0] > yields[len(yields)-1]+0.05) {
		t.Errorf("expected center-to-edge falloff: %v", yields)
	}
	// Monotone-ish: every bin ≥ the last bin.
	last := yields[len(yields)-1]
	for i, y := range yields[:len(yields)-1] {
		if y < last-1e-9 {
			t.Errorf("bin %d (%g) below edge bin (%g)", i, y, last)
		}
	}
}

func TestW2WDieYieldsClusteringRaisesEdgeDefectExposure(t *testing.T) {
	p := Baseline()
	p.RadialDefectClustering = 3
	dies, err := p.W2WDieYields()
	if err != nil {
		t.Fatal(err)
	}
	// Find the most central and most peripheral dies.
	var center, edge DieYield
	minR, maxR := math.Inf(1), -1.0
	for _, d := range dies {
		if r := d.Radius(); r < minR {
			minR, center = r, d
		}
		if r := d.Radius(); r > maxR {
			maxR, edge = r, d
		}
	}
	if center.Defect <= edge.Defect {
		t.Errorf("clustered defects: center %g should out-yield edge %g",
			center.Defect, edge.Defect)
	}
}

func TestRadialProfileEdgeCases(t *testing.T) {
	if c, y := RadialProfile(nil, 5, 0.15); c != nil || y != nil {
		t.Error("empty dies should give nil profile")
	}
	p := Baseline()
	dies, err := p.W2WDieYields()
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := RadialProfile(dies, 0, p.WaferRadius()); c != nil {
		t.Error("zero bins should give nil")
	}
	// One bin = overall mean.
	c, y := RadialProfile(dies, 1, p.WaferRadius())
	if len(c) != 1 || len(y) != 1 {
		t.Fatalf("one-bin profile: %d/%d", len(c), len(y))
	}
	var sum float64
	for _, d := range dies {
		sum += d.Total
	}
	if math.Abs(y[0]-sum/float64(len(dies))) > 1e-12 {
		t.Errorf("one-bin mean = %g, want %g", y[0], sum/float64(len(dies)))
	}
}

func TestW2WDieYieldsRejectsInvalid(t *testing.T) {
	p := Baseline()
	p.DefectShape = 1
	if _, err := p.W2WDieYields(); err == nil {
		t.Error("invalid params accepted")
	}
}
