package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"reflect"
)

// CanonicalHash returns a stable 64-bit FNV-1a digest of the parameter
// set. Two parameter sets hash equal iff they are numerically equal
// (negative zero is folded into positive zero), which makes the hash a
// sound cache key for the analytic model: every model output is a pure
// function of Params.
//
// The digest walks the struct fields in declaration order and feeds each
// float64's IEEE-754 bit pattern into the hash, so the value is stable
// within a process and across processes of the same build. It is NOT
// guaranteed stable across releases that add, remove or reorder fields —
// callers must not persist it.
func (p Params) CanonicalHash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	v := reflect.ValueOf(p)
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() != reflect.Float64 {
			// Params is all-float64 today (core_test pins this), so the
			// branch is unreachable until someone adds a non-float field —
			// at which point it must extend this switch rather than be
			// silently skipped. CanonicalHash is the service cache key and
			// must stay infallible, so the guard panics instead of
			// returning an error.
			panic(fmt.Sprintf("core: CanonicalHash: unhashed field %s of kind %s", //yaplint:allow no-naked-panic unreachable while Params is all-float64; hash must stay infallible
				v.Type().Field(i).Name, f.Kind()))
		}
		x := f.Float()
		if x == 0 {
			x = 0 // fold -0.0 into +0.0
		}
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// HashString returns CanonicalHash formatted as a fixed-width hex string,
// the form the service layer reports in API responses.
func (p Params) HashString() string {
	return fmt.Sprintf("%016x", p.CanonicalHash())
}
