package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"reflect"

	"yap/internal/layout"
)

// CanonicalHash returns a stable 64-bit FNV-1a digest of the parameter
// set. Two parameter sets hash equal iff they are numerically equal
// (negative zero is folded into positive zero), which makes the hash a
// sound cache key for the analytic model: every model output is a pure
// function of Params.
//
// The digest walks the struct fields in declaration order and feeds each
// float64's IEEE-754 bit pattern into the hash, so the value is stable
// within a process and across processes of the same build. It is NOT
// guaranteed stable across releases that add, remove or reorder fields —
// callers must not persist it.
func (p Params) CanonicalHash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	v := reflect.ValueOf(p)
	layoutPtr := reflect.TypeOf((*layout.Layout)(nil))
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch {
		case f.Kind() == reflect.Float64:
			x := f.Float()
			if x == 0 {
				x = 0 // fold -0.0 into +0.0
			}
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
			h.Write(buf[:])
		case f.Type() == layoutPtr:
			// A nil layout contributes nothing, so every pre-layout
			// parameter set keeps its historical hash and existing cache
			// entries and WAL specs stay valid. A set layout feeds its
			// canonical bytes behind a domain separator, so no float-field
			// ambiguity is possible and distinct layouts hash distinctly
			// (hash_test pins both properties).
			if !f.IsNil() {
				h.Write([]byte("layout:"))
				h.Write(f.Interface().(*layout.Layout).CanonicalBytes())
			}
		default:
			// Every Params field is float64 or the PadLayout pointer
			// (core_test pins this), so the branch is unreachable until
			// someone adds another field kind — at which point it must
			// extend this switch rather than be silently skipped.
			// CanonicalHash is the service cache key and must stay
			// infallible, so the guard panics instead of returning an
			// error.
			panic(fmt.Sprintf("core: CanonicalHash: unhashed field %s of kind %s", //yaplint:allow no-naked-panic unreachable while Params fields stay float64/PadLayout; hash must stay infallible
				v.Type().Field(i).Name, f.Kind()))
		}
	}
	return h.Sum64()
}

// HashString returns CanonicalHash formatted as a fixed-width hex string,
// the form the service layer reports in API responses.
func (p Params) HashString() string {
	return fmt.Sprintf("%016x", p.CanonicalHash())
}
