package core

import (
	"math"
	"testing"

	"yap/internal/layout"
)

// The bit patterns below were captured from the pre-layout analytic model.
// The layout-aware evaluators dispatch on PadLayout == nil, so these pin
// both that the legacy path is untouched and (together with
// TestAnalyticUniformLayoutBitIdentical) that the region path degenerates
// to it for a single full-die region.

func checkBits(t *testing.T, name string, got float64, want uint64) {
	t.Helper()
	if math.Float64bits(got) != want {
		t.Errorf("%s = %v (bits %016x), want bits %016x", name, got, math.Float64bits(got), want)
	}
}

func TestAnalyticGoldenReplay(t *testing.T) {
	b, err := Baseline().EvaluateW2W()
	if err != nil {
		t.Fatal(err)
	}
	checkBits(t, "W2W baseline Overlay", b.Overlay, 0x3ff0000000000000)
	checkBits(t, "W2W baseline Recess", b.Recess, 0x3fefd35265d67efa)
	checkBits(t, "W2W baseline Defect", b.Defect, 0x3fea0fe48f30a0b2)
	checkBits(t, "W2W baseline Total", b.Total, 0x3fe9eb815171ce53)

	b4, err := Baseline().WithPitch(4e-6).EvaluateW2W()
	if err != nil {
		t.Fatal(err)
	}
	checkBits(t, "W2W pitch4 Overlay", b4.Overlay, 0x3ff0000000000000)
	checkBits(t, "W2W pitch4 Recess", b4.Recess, 0x3fef9bbcac186201)
	checkBits(t, "W2W pitch4 Defect", b4.Defect, 0x3fea0fe48f30a0b2)
	checkBits(t, "W2W pitch4 Total", b4.Total, 0x3fe9be3c0f54c0b3)

	d, err := Baseline().EvaluateD2W()
	if err != nil {
		t.Fatal(err)
	}
	checkBits(t, "D2W baseline Overlay", d.Overlay, 0x3ff0000000000000)
	checkBits(t, "D2W baseline Recess", d.Recess, 0x3fefd35265d67efa)
	checkBits(t, "D2W baseline Defect", d.Defect, 0x3fec965dcc3d7ddb)
	checkBits(t, "D2W baseline Total", d.Total, 0x3fec6e73f4a0d9cf)

	d4, err := Baseline().WithPitch(4e-6).EvaluateD2W()
	if err != nil {
		t.Fatal(err)
	}
	checkBits(t, "D2W pitch4 Overlay", d4.Overlay, 0x3ff0000000000000)
	checkBits(t, "D2W pitch4 Recess", d4.Recess, 0x3fef9bbcac186201)
	checkBits(t, "D2W pitch4 Defect", d4.Defect, 0x3fec9678519d4b14)
	checkBits(t, "D2W pitch4 Total", d4.Total, 0x3fec3ce5f39d213a)
}

// TestAnalyticUniformLayoutBitIdentical: the analytic half of the YAP+
// identity pin — an explicit single full-die uniform region evaluates to
// the exact legacy Breakdown for both bonding styles.
func TestAnalyticUniformLayoutBitIdentical(t *testing.T) {
	for _, p := range []Params{Baseline(), Baseline().WithPitch(4e-6)} {
		q := p
		uni := layout.Uniform(p.DieWidth, p.DieHeight, p.PadGeometry())
		q.PadLayout = &uni

		lw, err := p.EvaluateW2W()
		if err != nil {
			t.Fatal(err)
		}
		rw, err := q.EvaluateW2W()
		if err != nil {
			t.Fatal(err)
		}
		if lw != rw {
			t.Errorf("W2W uniform layout %+v != legacy %+v", rw, lw)
		}

		ld, err := p.EvaluateD2W()
		if err != nil {
			t.Fatal(err)
		}
		rd, err := q.EvaluateD2W()
		if err != nil {
			t.Fatal(err)
		}
		if ld != rd {
			t.Errorf("D2W uniform layout %+v != legacy %+v", rd, ld)
		}
	}
}

// TestAnalyticMultiRegionDiffers: heterogeneous regions must move the
// analytic answer (coarser io pads change δ, D_Cu and critical area).
func TestAnalyticMultiRegionDiffers(t *testing.T) {
	p := Baseline()
	l := layout.Layout{Regions: []layout.Region{
		{Name: "core", X0: -5e-3, Y0: -5e-3, X1: 2e-3, Y1: 5e-3},
		{Name: "io", X0: 2e-3, Y0: -5e-3, X1: 5e-3, Y1: 5e-3,
			Pitch: 12e-6, TopPadDiameter: 4e-6, BottomPadDiameter: 6e-6},
	}}
	p.PadLayout = &l
	if err := p.Validate(); err != nil {
		t.Fatalf("multi-region params invalid: %v", err)
	}
	legacy, err := Baseline().EvaluateW2W()
	if err != nil {
		t.Fatal(err)
	}
	multi, err := p.EvaluateW2W()
	if err != nil {
		t.Fatal(err)
	}
	if legacy == multi {
		t.Errorf("two-pitch layout reproduced the uniform breakdown %+v", legacy)
	}
	if multi.Total <= 0 || multi.Total > 1 {
		t.Errorf("multi-region total %g out of (0,1]", multi.Total)
	}
	multiD, err := p.EvaluateD2W()
	if err != nil {
		t.Fatal(err)
	}
	if multiD.Total <= 0 || multiD.Total > 1 {
		t.Errorf("multi-region D2W total %g out of (0,1]", multiD.Total)
	}
}
