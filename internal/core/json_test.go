package core

import (
	"encoding/json"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParamsJSONRoundTrip(t *testing.T) {
	p := Baseline().WithPitch(2e-6)
	p.Warpage = 42e-6
	dir := t.TempDir()
	path := filepath.Join(dir, "process.json")
	if err := p.SaveParams(path); err != nil {
		t.Fatal(err)
	}
	q, err := LoadParams(path)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", q, p)
	}
}

func TestReadParamsDefaultsToBaseline(t *testing.T) {
	// A partial file overrides only the named fields.
	q, err := ReadParams(strings.NewReader(`{"Pitch": 3e-6, "BottomPadDiameter": 1.5e-6, "TopPadDiameter": 1e-6}`))
	if err != nil {
		t.Fatal(err)
	}
	if q.Pitch != 3e-6 {
		t.Errorf("pitch = %g", q.Pitch)
	}
	base := Baseline()
	if q.WaferDiameter != base.WaferDiameter || q.DefectDensity != base.DefectDensity {
		t.Error("unspecified fields should default to baseline")
	}
}

func TestReadParamsRejectsUnknownField(t *testing.T) {
	if _, err := ReadParams(strings.NewReader(`{"Pich": 3e-6}`)); err == nil {
		t.Error("typo field accepted")
	}
}

func TestReadParamsRejectsInvalid(t *testing.T) {
	// d₂ > pitch.
	if _, err := ReadParams(strings.NewReader(`{"Pitch": 1e-6}`)); err == nil {
		t.Error("invalid combination accepted")
	}
	if _, err := ReadParams(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestLoadParamsMissingFile(t *testing.T) {
	_, err := LoadParams("/nonexistent/process.json")
	if err == nil {
		t.Fatal("missing file accepted")
	}
	// The os error must stay wrapped (%w) so callers can classify the
	// failure without string matching.
	if !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("errors.Is(err, fs.ErrNotExist) = false for %v", err)
	}
	var pathErr *fs.PathError
	if !errors.As(err, &pathErr) {
		t.Errorf("errors.As(err, *fs.PathError) = false for %v", err)
	}
}

func TestDecodeParamsWrapsJSONError(t *testing.T) {
	// A malformed body must surface the json error type through the wrap
	// chain, not just its text.
	_, err := ReadParams(strings.NewReader(`{"Pitch": "oops"}`))
	if err == nil {
		t.Fatal("malformed value accepted")
	}
	var typeErr *json.UnmarshalTypeError
	if !errors.As(err, &typeErr) {
		t.Errorf("errors.As(err, *json.UnmarshalTypeError) = false for %v", err)
	}
}

func TestLoadParamsErrorNamesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "typo.json")
	if err := os.WriteFile(path, []byte(`{"Pich": 3e-6}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadParams(path)
	if err == nil {
		t.Fatal("typo field accepted")
	}
	if !strings.Contains(err.Error(), "typo.json") {
		t.Errorf("error %q does not name the config file", err)
	}
}
