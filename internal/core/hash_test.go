package core

import (
	"math"
	"reflect"
	"testing"

	"yap/internal/layout"
)

func TestCanonicalHashEqualParamsEqualHash(t *testing.T) {
	a, b := Baseline(), Baseline()
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Error("identical params hash differently")
	}
	if a.HashString() != b.HashString() {
		t.Error("identical params format differently")
	}
	if len(a.HashString()) != 16 {
		t.Errorf("hash string %q is not 16 hex chars", a.HashString())
	}
}

func TestCanonicalHashSensitivity(t *testing.T) {
	base := Baseline()
	seen := map[uint64]string{base.CanonicalHash(): "baseline"}
	variants := map[string]Params{
		"pitch":   base.WithPitch(2e-6),
		"density": base.WithDefectDensity(2 * base.DefectDensity),
		"warpage": func() Params { p := base; p.Warpage *= 1.000001; return p }(),
		"seedish": func() Params { p := base; p.RecessSigma += 1e-12; return p }(),
	}
	for name, p := range variants {
		h := p.CanonicalHash()
		if prev, dup := seen[h]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[h] = name
	}
}

func TestCanonicalHashNegativeZero(t *testing.T) {
	a, b := Baseline(), Baseline()
	a.EdgeExclusion = 0
	b.EdgeExclusion = math.Copysign(0, -1)
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Error("-0.0 and +0.0 hash differently")
	}
}

// TestCanonicalHashGolden pins the digests of the two canonical parameter
// sets. These hashes key the service result cache, the dist shard planner
// and the durable job specs; a silent change would orphan every cached and
// persisted artifact, so any intentional change to the walk must update
// these values knowingly.
func TestCanonicalHashGolden(t *testing.T) {
	if got := Baseline().HashString(); got != "c181c4a6248bec32" {
		t.Errorf("Baseline hash = %s, want c181c4a6248bec32", got)
	}
	if got := Baseline().WithPitch(4e-6).HashString(); got != "38098dae1e83ee06" {
		t.Errorf("WithPitch(4µm) hash = %s, want 38098dae1e83ee06", got)
	}
}

// TestCanonicalHashLayout checks the layout extension of the hash walk: a
// nil layout contributes nothing (the golden values above predate the
// field), any non-nil layout changes the digest, distinct layouts hash
// distinctly, and equal layouts behind different pointers hash equal.
func TestCanonicalHashLayout(t *testing.T) {
	base := Baseline()
	uni := layout.Uniform(base.DieWidth, base.DieHeight, base.PadGeometry())

	withUni := base
	withUni.PadLayout = &uni
	if withUni.CanonicalHash() == base.CanonicalHash() {
		t.Error("explicit uniform layout hashes like nil layout; layout must be part of the key")
	}

	uni2 := layout.Uniform(base.DieWidth, base.DieHeight, base.PadGeometry())
	withUni2 := base
	withUni2.PadLayout = &uni2
	if withUni.CanonicalHash() != withUni2.CanonicalHash() {
		t.Error("equal layouts behind different pointers hash differently")
	}

	two := layout.Layout{Regions: []layout.Region{
		{Name: "core", X0: -5e-3, Y0: -5e-3, X1: 0, Y1: 5e-3},
		{Name: "io", X0: 0, Y0: -5e-3, X1: 5e-3, Y1: 5e-3, Pitch: 12e-6},
	}}
	withTwo := base
	withTwo.PadLayout = &two
	if withTwo.CanonicalHash() == withUni.CanonicalHash() {
		t.Error("distinct layouts collide")
	}

	renamed := layout.Layout{Regions: []layout.Region{
		{Name: "kore", X0: -5e-3, Y0: -5e-3, X1: 0, Y1: 5e-3},
		{Name: "io", X0: 0, Y0: -5e-3, X1: 5e-3, Y1: 5e-3, Pitch: 12e-6},
	}}
	withRenamed := base
	withRenamed.PadLayout = &renamed
	if withRenamed.CanonicalHash() == withTwo.CanonicalHash() {
		t.Error("region names not distinguished")
	}
}

// TestParamsFieldKinds pins the closed-world assumption hash.go's walk
// panics on: every Params field is either a float64 or the *layout.Layout
// pad-layout pointer. Growing a field of any other kind must extend the
// walk (and this pin) first.
func TestParamsFieldKinds(t *testing.T) {
	layoutPtr := reflect.TypeOf((*layout.Layout)(nil))
	typ := reflect.TypeOf(Params{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Type.Kind() == reflect.Float64 || f.Type == layoutPtr {
			continue
		}
		t.Errorf("field %s has kind %s; CanonicalHash only walks float64 and *layout.Layout", f.Name, f.Type)
	}
}

func TestParamsEqual(t *testing.T) {
	base := Baseline()
	uni := layout.Uniform(base.DieWidth, base.DieHeight, base.PadGeometry())
	uniCopy := layout.Uniform(base.DieWidth, base.DieHeight, base.PadGeometry())

	a, b := base, base
	a.PadLayout, b.PadLayout = &uni, &uniCopy
	if !a.Equal(b) {
		t.Error("equal layouts behind different pointers compare unequal")
	}
	if !base.Equal(Baseline()) {
		t.Error("identical nil-layout params compare unequal")
	}
	if base.Equal(a) {
		t.Error("nil layout compares equal to explicit uniform layout")
	}
	c := a
	c.Pitch *= 2
	if a.Equal(c) {
		t.Error("differing non-layout field not detected")
	}
	d := base
	two := layout.Layout{Regions: []layout.Region{
		{Name: "core", X0: -5e-3, Y0: -5e-3, X1: 0, Y1: 5e-3},
		{Name: "io", X0: 0, Y0: -5e-3, X1: 5e-3, Y1: 5e-3, Pitch: 12e-6},
	}}
	d.PadLayout = &two
	if a.Equal(d) {
		t.Error("differing layouts compare equal")
	}
}

func TestCanonicalHashFieldOrderMatters(t *testing.T) {
	// Swapping two equal-by-chance values across different fields must
	// change the digest: position is part of the key.
	a := Baseline()
	b := a
	a.TranslationX, a.TranslationY = 1e-9, 2e-9
	b.TranslationX, b.TranslationY = 2e-9, 1e-9
	if a.CanonicalHash() == b.CanonicalHash() {
		t.Error("field positions not distinguished")
	}
}
