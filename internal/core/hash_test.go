package core

import (
	"math"
	"testing"
)

func TestCanonicalHashEqualParamsEqualHash(t *testing.T) {
	a, b := Baseline(), Baseline()
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Error("identical params hash differently")
	}
	if a.HashString() != b.HashString() {
		t.Error("identical params format differently")
	}
	if len(a.HashString()) != 16 {
		t.Errorf("hash string %q is not 16 hex chars", a.HashString())
	}
}

func TestCanonicalHashSensitivity(t *testing.T) {
	base := Baseline()
	seen := map[uint64]string{base.CanonicalHash(): "baseline"}
	variants := map[string]Params{
		"pitch":   base.WithPitch(2e-6),
		"density": base.WithDefectDensity(2 * base.DefectDensity),
		"warpage": func() Params { p := base; p.Warpage *= 1.000001; return p }(),
		"seedish": func() Params { p := base; p.RecessSigma += 1e-12; return p }(),
	}
	for name, p := range variants {
		h := p.CanonicalHash()
		if prev, dup := seen[h]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[h] = name
	}
}

func TestCanonicalHashNegativeZero(t *testing.T) {
	a, b := Baseline(), Baseline()
	a.EdgeExclusion = 0
	b.EdgeExclusion = math.Copysign(0, -1)
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Error("-0.0 and +0.0 hash differently")
	}
}

func TestCanonicalHashFieldOrderMatters(t *testing.T) {
	// Swapping two equal-by-chance values across different fields must
	// change the digest: position is part of the key.
	a := Baseline()
	b := a
	a.TranslationX, a.TranslationY = 1e-9, 2e-9
	b.TranslationX, b.TranslationY = 2e-9, 1e-9
	if a.CanonicalHash() == b.CanonicalHash() {
		t.Error("field positions not distinguished")
	}
}
