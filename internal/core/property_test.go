package core

import (
	"math"
	"testing"
	"testing/quick"

	"yap/internal/units"
)

// randomParams maps three raw quick-generated floats onto a valid
// parameter set spanning the model's intended operating envelope.
func randomParams(a, b, c float64) Params {
	wrap := func(x, lo, hi float64) float64 {
		f := math.Abs(math.Mod(x, 1))
		if math.IsNaN(f) {
			f = 0.5
		}
		return lo + f*(hi-lo)
	}
	p := Baseline().
		WithPitch(wrap(a, 1, 10) * units.Micrometer).
		WithDefectDensity(wrap(b, 0.005, 0.5) * units.PerSquareCentimeter).
		WithDieArea(wrap(c, 9, 150) * units.SquareMillimeter)
	p.Warpage = wrap(a*b+1, 2, 50) * units.Micrometer
	p.RecessTop = wrap(b*c+1, 6, 11) * units.Nanometer
	p.RecessBottom = p.RecessTop
	return p
}

// TestEvaluateW2WYieldsAreProbabilities is the core invariant of the whole
// model: every yield term is a probability in [0, 1] and the total is
// their product, for any parameter set in the operating envelope.
func TestEvaluateW2WYieldsAreProbabilities(t *testing.T) {
	f := func(a, b, c float64) bool {
		p := randomParams(a, b, c)
		if p.Validate() != nil {
			return true // generator landed outside the envelope; skip
		}
		bd, err := p.EvaluateW2W()
		if err != nil {
			return false
		}
		inUnit := func(y float64) bool { return y >= 0 && y <= 1 && !math.IsNaN(y) }
		return inUnit(bd.Overlay) && inUnit(bd.Recess) && inUnit(bd.Defect) && inUnit(bd.Total) &&
			math.Abs(bd.Total-bd.Overlay*bd.Recess*bd.Defect) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateD2WYieldsAreProbabilities(t *testing.T) {
	f := func(a, b, c float64) bool {
		p := randomParams(a, b, c)
		if p.Validate() != nil {
			return true
		}
		bd, err := p.EvaluateD2W()
		if err != nil {
			return false
		}
		inUnit := func(y float64) bool { return y >= 0 && y <= 1 && !math.IsNaN(y) }
		return inUnit(bd.Overlay) && inUnit(bd.Recess) && inUnit(bd.Defect) && inUnit(bd.Total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestDefectYieldMonotoneInDensityProperty: more particles never help.
func TestDefectYieldMonotoneInDensityProperty(t *testing.T) {
	f := func(a, c float64) bool {
		p := randomParams(a, 0.3, c)
		if p.Validate() != nil {
			return true
		}
		dirty := p.WithDefectDensity(p.DefectDensity * 2)
		y1, err1 := p.EvaluateW2W()
		y2, err2 := dirty.EvaluateW2W()
		if err1 != nil || err2 != nil {
			return false
		}
		return y2.Defect <= y1.Defect+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestSystemYieldBoundedByDieYield: a multi-chiplet system can never
// out-yield one of its chiplet bonds.
func TestSystemYieldBoundedByDieYield(t *testing.T) {
	f := func(a, b, c float64) bool {
		p := randomParams(a, b, c)
		if p.Validate() != nil {
			return true
		}
		d, err := p.EvaluateD2W()
		if err != nil {
			return false
		}
		ySys, n, err := p.SystemYield(1000 * units.SquareMillimeter)
		if err != nil {
			return false
		}
		return n >= 1 && ySys <= d.Total+1e-12 && ySys >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestWithPitchPreservesOtherFields: the pitch helper only touches the
// three pad-geometry fields.
func TestWithPitchPreservesOtherFields(t *testing.T) {
	f := func(a float64) bool {
		pitch := (1 + math.Abs(math.Mod(a, 9))) * units.Micrometer
		base := Baseline()
		q := base.WithPitch(pitch)
		q.Pitch = base.Pitch
		q.TopPadDiameter = base.TopPadDiameter
		q.BottomPadDiameter = base.BottomPadDiameter
		return q == base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
