package converge

import "testing"

// The estimate/rule path runs once per checkpoint on the hot simulation
// loop (every CheckEvery samples in sim, every durable checkpoint in jobs),
// so its cost must stay negligible next to even a single die sample.

func BenchmarkEstimateOf(b *testing.B) {
	var sink Estimate
	for i := 0; i < b.N; i++ {
		sink = EstimateOf(i%9973, 9973)
	}
	benchSinkEstimate = sink
}

func BenchmarkRuleShouldStop(b *testing.B) {
	r := Rule{Epsilon: 1e-3, MinSamples: 100, CheckEvery: 100}
	est := EstimateOf(9871, 9973)
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = r.ShouldStop(i, est)
	}
	benchSinkBool = sink
}

func BenchmarkRuleNextCheckpoint(b *testing.B) {
	r := Rule{Epsilon: 1e-3, MinSamples: 100, CheckEvery: 100}
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.NextCheckpoint(i%20000, 20000)
	}
	benchSinkInt = sink
}

// BenchmarkTrackerStream walks a full 20k-sample checkpoint ladder —
// the complete per-run cost of convergence tracking at D2W default scale.
func BenchmarkTrackerStream(b *testing.B) {
	r := Rule{Epsilon: 1e-9, MinSamples: 100, CheckEvery: 100} // never stops
	for i := 0; i < b.N; i++ {
		tr := NewTracker(r)
		const total = 20000
		for c := 0; c < total; {
			c = r.NextCheckpoint(c, total)
			s, err := tr.Observe(c, total, c-c/50, c)
			if err != nil {
				b.Fatal(err)
			}
			benchSinkBool = s.Stop
		}
	}
}

var (
	benchSinkEstimate Estimate
	benchSinkBool     bool
	benchSinkInt      int
)
