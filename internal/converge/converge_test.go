package converge

import (
	"math"
	"testing"

	"yap/internal/num"
)

func TestEstimateOfMatchesWilson(t *testing.T) {
	cases := []struct{ k, n int }{
		{0, 1}, {1, 1}, {50, 100}, {999, 1000}, {1, 1000}, {250000, 500000},
	}
	for _, c := range cases {
		e := EstimateOf(c.k, c.n)
		lo, hi := num.WilsonInterval(c.k, c.n)
		if e.Lo != lo || e.Hi != hi {
			t.Errorf("EstimateOf(%d,%d) interval [%g,%g], want [%g,%g]",
				c.k, c.n, e.Lo, e.Hi, lo, hi)
		}
		if got, want := e.HalfWidth, (hi-lo)/2; got != want {
			t.Errorf("EstimateOf(%d,%d) half-width %g, want %g", c.k, c.n, got, want)
		}
		if got, want := e.Yield, float64(c.k)/float64(c.n); got != want {
			t.Errorf("EstimateOf(%d,%d) yield %g, want %g", c.k, c.n, got, want)
		}
	}
}

func TestEstimateOfEmptyTally(t *testing.T) {
	for _, n := range []int{0, -3} {
		e := EstimateOf(0, n)
		if e.Trials != 0 || e.Lo != 0 || e.Hi != 1 || e.HalfWidth != 0.5 {
			t.Errorf("EstimateOf(0,%d) = %+v, want vacuous [0,1] estimate", n, e)
		}
		if (Rule{Epsilon: 0.4}).ShouldStop(1<<20, e) {
			t.Error("vacuous estimate satisfied epsilon 0.4")
		}
	}
}

// Degenerate tallies: at p = 0 and p = 1 the normal half-width collapses to
// zero, but the Wilson half-width must stay honestly positive and shrink
// like z²/n — this is exactly why the rule keys on Wilson.
func TestEstimateOfDegenerateTallies(t *testing.T) {
	for _, n := range []int{1, 10, 100, 10000} {
		zero := EstimateOf(0, n)
		full := EstimateOf(n, n)
		if zero.NormalHalfWidth != 0 || full.NormalHalfWidth != 0 {
			t.Errorf("n=%d: normal half-widths %g/%g, want 0 at p∈{0,1}",
				n, zero.NormalHalfWidth, full.NormalHalfWidth)
		}
		if zero.HalfWidth <= 0 || full.HalfWidth <= 0 {
			t.Errorf("n=%d: Wilson half-widths %g/%g, want > 0 at p∈{0,1}",
				n, zero.HalfWidth, full.HalfWidth)
		}
		// Symmetry: the interval for 0/n mirrors the one for n/n.
		if d := math.Abs(zero.HalfWidth - full.HalfWidth); d > 1e-15 {
			t.Errorf("n=%d: asymmetric degenerate half-widths %g vs %g",
				n, zero.HalfWidth, full.HalfWidth)
		}
	}
	// Half-width shrinks with n — a degenerate run still converges.
	if !(EstimateOf(0, 10000).HalfWidth < EstimateOf(0, 100).HalfWidth) {
		t.Error("degenerate half-width did not shrink with n")
	}
}

func TestRuleEnabledAndNormalized(t *testing.T) {
	var zero Rule
	if zero.Enabled() {
		t.Error("zero Rule must be disabled")
	}
	if got := zero.Normalized(); got != zero {
		t.Errorf("disabled rule normalized to %+v, want unchanged", got)
	}
	r := Rule{Epsilon: 1e-3}.Normalized()
	if r.MinSamples != DefaultMinSamples || r.CheckEvery != DefaultCheckEvery {
		t.Errorf("normalized rule %+v, want defaults %d/%d",
			r, DefaultMinSamples, DefaultCheckEvery)
	}
	r = Rule{Epsilon: 1e-3, MinSamples: -5, CheckEvery: -1}.Normalized()
	if r.MinSamples != DefaultMinSamples || r.CheckEvery != DefaultCheckEvery {
		t.Errorf("negative fields normalized to %+v, want defaults", r)
	}
	keep := Rule{Epsilon: 0.01, MinSamples: 7, CheckEvery: 3}
	if got := keep.Normalized(); got != keep {
		t.Errorf("explicit fields normalized to %+v, want unchanged", got)
	}
}

func TestRuleNextCheckpoint(t *testing.T) {
	r := Rule{Epsilon: 0.01, MinSamples: 100, CheckEvery: 50}
	cases := []struct{ completed, total, want int }{
		{0, 1000, 100},   // first boundary is the floor
		{99, 1000, 100},  // still the floor
		{100, 1000, 150}, // then floor + stride
		{101, 1000, 150}, // mid-stride rounds up to the boundary
		{149, 1000, 150},
		{150, 1000, 200},
		{0, 60, 60},        // floor clamped to the cap
		{120, 130, 130},    // stride clamped to the cap
		{1000, 1000, 1000}, // at the cap: nothing left
	}
	for _, c := range cases {
		if got := r.NextCheckpoint(c.completed, c.total); got != c.want {
			t.Errorf("NextCheckpoint(%d, %d) = %d, want %d",
				c.completed, c.total, got, c.want)
		}
	}
}

// The checkpoint boundaries must be a deterministic function of (rule,
// total) alone: walking them from 0 yields the same ladder no matter the
// step history.
func TestRuleCheckpointLadderDeterministic(t *testing.T) {
	r := Rule{Epsilon: 1e-3, MinSamples: 137, CheckEvery: 61}
	const total = 5000
	var ladder []int
	for c := 0; c < total; {
		c = r.NextCheckpoint(c, total)
		ladder = append(ladder, c)
	}
	// Re-walk starting from arbitrary interior points: every interior point
	// must land back on the same ladder.
	for _, start := range []int{1, 136, 137, 200, 4999} {
		next := r.NextCheckpoint(start, total)
		found := false
		for _, b := range ladder {
			if next == b {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("NextCheckpoint(%d) = %d is off the ladder %v", start, next, ladder[:5])
		}
	}
	if last := ladder[len(ladder)-1]; last != total {
		t.Errorf("ladder ends at %d, want total %d", last, total)
	}
}

func TestRuleShouldStop(t *testing.T) {
	r := Rule{Epsilon: 0.01, MinSamples: 100, CheckEvery: 50}
	tight := EstimateOf(990, 1000) // half-width ≈ 0.0065 < ε
	loose := EstimateOf(50, 100)   // half-width ≈ 0.097 > ε
	if r.ShouldStop(99, tight) {
		t.Error("stopped below the min-samples floor")
	}
	if !r.ShouldStop(100, tight) {
		t.Error("did not stop with half-width below epsilon at the floor")
	}
	if r.ShouldStop(1000, loose) {
		t.Error("stopped with half-width above epsilon")
	}
	if r.ShouldStop(1000, EstimateOf(0, 0)) {
		t.Error("stopped on an empty tally")
	}
	if (Rule{}).ShouldStop(1<<30, tight) {
		t.Error("disabled rule stopped")
	}
}

func TestTrackerObserve(t *testing.T) {
	tr := NewTracker(Rule{Epsilon: 0.01, MinSamples: 100, CheckEvery: 100})
	s1, err := tr.Observe(100, 1000, 99, 100)
	if err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if s1.Seq != 1 || s1.Completed != 100 || s1.Requested != 1000 {
		t.Errorf("snapshot 1 = %+v", s1)
	}
	if s1.Stop {
		t.Error("stopped at half-width ≈ 0.04 with ε = 0.01")
	}
	s2, err := tr.Observe(200, 1000, 200, 200)
	if err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if s2.Seq != 2 {
		t.Errorf("seq = %d, want 2", s2.Seq)
	}
	// Same completed count again (e.g. a re-published checkpoint) is fine —
	// cumulative streams may repeat, they may not regress.
	if _, err := tr.Observe(200, 1000, 200, 200); err != nil {
		t.Fatalf("repeat Observe: %v", err)
	}
	if _, err := tr.Observe(150, 1000, 150, 150); err == nil {
		t.Error("Observe accepted a regressed checkpoint")
	}
}

// Property: the stop index produced by walking the checkpoint ladder over a
// fixed success sequence is a pure function of (rule, tally sequence) — two
// independent walks agree exactly.
func TestStopIndexDeterministicProperty(t *testing.T) {
	// A synthetic deterministic tally: success count k(n) = n - n/50 gives
	// a yield of 0.98 whose Wilson half-width crosses 0.01 around n ≈ 1100.
	tally := func(n int) int { return n - n/50 }
	run := func() (stopAt, seq int) {
		r := Rule{Epsilon: 0.01, MinSamples: 100, CheckEvery: 50}
		tr := NewTracker(r)
		const total = 100000
		for c := 0; c < total; {
			c = r.NextCheckpoint(c, total)
			s, err := tr.Observe(c, total, tally(c), c)
			if err != nil {
				t.Fatalf("Observe: %v", err)
			}
			if s.Stop {
				return c, s.Seq
			}
		}
		return -1, -1
	}
	stop1, seq1 := run()
	stop2, seq2 := run()
	if stop1 != stop2 || seq1 != seq2 {
		t.Fatalf("non-deterministic stop: (%d,%d) vs (%d,%d)", stop1, seq1, stop2, seq2)
	}
	if stop1 <= 0 {
		t.Fatal("rule never stopped on a converging tally")
	}
	if stop1 < 100 {
		t.Fatalf("stopped at %d, below the floor", stop1)
	}
	// Sanity: the crossing really happens near the analytic prediction.
	if stop1 < 600 || stop1 > 2500 {
		t.Errorf("stop index %d far from the expected ≈1100 crossing", stop1)
	}
}
