// Package converge turns the raw integer tallies that internal/sim
// checkpoints (per bonded wafer for W2W, per die slice for D2W) into an
// ordered stream of running yield estimates with confidence intervals, and
// decides — deterministically — when a Monte-Carlo run has converged.
//
// The sequential-stopping rule is intentionally simple: stop as soon as the
// Wilson 95% half-width of the overall yield estimate falls to the
// requested epsilon, subject to a minimum-samples floor (so a lucky early
// tally cannot end a run after a handful of samples) and the run's hard N
// cap (the rule can only shorten a run, never extend it). Determinism is
// the load-bearing property: the rule is evaluated only at sample-count
// boundaries that are themselves deterministic functions of (rule, N) —
// never at scheduler-dependent moments — so the same seed, spec and
// epsilon always stop at the same sample index regardless of worker count,
// process count or wall-clock. Everything here is pure integer/float
// arithmetic over tallies; nothing reads clocks, maps or global RNGs,
// which is why the package sits in yaplint's determinism tree.
package converge

import (
	"fmt"
	"math"

	"yap/internal/num"
)

// z975 is the 97.5th percentile of N(0,1) — the same constant
// num.WilsonInterval uses, duplicated here only for the normal-approximation
// half-width (which num does not expose).
const z975 = 1.959963984540054

// Estimate is a point-in-time yield estimate over Trials simulated dies.
type Estimate struct {
	// Trials and Successes are the raw tally the estimate derives from:
	// dies simulated so far and dies that survived all checks.
	Trials, Successes int
	// Yield is the plain surviving fraction Successes/Trials (0 when
	// Trials == 0).
	Yield float64
	// Lo and Hi bound Yield with a Wilson 95% interval, matching the error
	// bars sim.Result reports.
	Lo, Hi float64
	// HalfWidth is (Hi-Lo)/2, the quantity the stopping rule compares to
	// epsilon. Wilson (not normal) on purpose: the normal interval
	// collapses to zero width at p ∈ {0, 1}, which would stop a degenerate
	// run after the minimum-samples floor no matter how loose the evidence.
	HalfWidth float64
	// NormalHalfWidth is the naive Wald half-width z·√(p(1-p)/n), reported
	// alongside for comparison; it is telemetry, never a stopping input.
	NormalHalfWidth float64
}

// EstimateOf builds the running estimate for successes out of trials.
// Non-positive trials return the vacuous estimate — Lo=0, Hi=1,
// HalfWidth=0.5 — so an empty tally never satisfies any epsilon < 0.5.
func EstimateOf(successes, trials int) Estimate {
	e := Estimate{Trials: trials, Successes: successes}
	if trials <= 0 {
		e.Trials = 0
		e.Successes = 0
		e.Lo, e.Hi = 0, 1
		e.HalfWidth = 0.5
		return e
	}
	e.Yield = float64(successes) / float64(trials)
	e.Lo, e.Hi = num.WilsonInterval(successes, trials)
	e.HalfWidth = (e.Hi - e.Lo) / 2
	e.NormalHalfWidth = z975 * normalSE(e.Yield, trials)
	return e
}

func normalSE(p float64, n int) float64 {
	return math.Sqrt(p * (1 - p) / float64(n))
}

// Default floors applied by Rule.Normalized when the corresponding field is
// zero. MinSamples keeps a lucky first checkpoint from ending a run on
// almost no evidence; CheckEvery bounds how often the rule re-evaluates
// (every sample would be both wasteful and pointless — the half-width moves
// like 1/√n).
const (
	DefaultMinSamples = 100
	DefaultCheckEvery = 100
)

// Rule is a deterministic sequential-stopping rule: end the run once the
// Wilson 95% half-width of the yield estimate is at most Epsilon, but never
// before MinSamples samples, re-evaluating every CheckEvery samples. The
// zero Rule is disabled (fixed-N behavior is unchanged).
type Rule struct {
	// Epsilon is the target CI half-width; <= 0 disables the rule entirely.
	Epsilon float64
	// MinSamples is the floor below which the rule never stops
	// (default DefaultMinSamples).
	MinSamples int
	// CheckEvery is the evaluation stride in samples beyond the floor
	// (default DefaultCheckEvery).
	CheckEvery int
}

// Enabled reports whether the rule is active. Epsilon <= 0 — including the
// zero Rule — means fixed-N: the run never stops early.
func (r Rule) Enabled() bool { return r.Epsilon > 0 }

// Normalized returns r with zero or negative MinSamples/CheckEvery replaced
// by the package defaults. A disabled rule normalizes to itself.
func (r Rule) Normalized() Rule {
	if !r.Enabled() {
		return r
	}
	if r.MinSamples <= 0 {
		r.MinSamples = DefaultMinSamples
	}
	if r.CheckEvery <= 0 {
		r.CheckEvery = DefaultCheckEvery
	}
	return r
}

// NextCheckpoint returns the sample count at which the rule should next be
// evaluated, given completed samples so far of a total-sample cap. The
// boundaries are MinSamples, MinSamples+CheckEvery, MinSamples+2·CheckEvery,
// … clamped to total — a deterministic function of (rule, total) alone,
// which is what makes the stop index reproducible at any worker count.
// When completed >= total there is no next checkpoint and total is
// returned.
func (r Rule) NextCheckpoint(completed, total int) int {
	r = r.Normalized()
	next := r.MinSamples
	if completed >= r.MinSamples {
		over := completed - r.MinSamples
		next = r.MinSamples + (over/r.CheckEvery+1)*r.CheckEvery
	}
	if next > total {
		next = total
	}
	if next < completed {
		next = completed
	}
	return next
}

// ShouldStop reports the rule's verdict for an estimate observed after
// completed samples: true once completed has reached the floor and the
// Wilson half-width is within Epsilon. A disabled rule never stops, and an
// empty tally never stops (its half-width is 0.5 by convention).
func (r Rule) ShouldStop(completed int, est Estimate) bool {
	r = r.Normalized()
	if !r.Enabled() || completed < r.MinSamples || est.Trials <= 0 {
		return false
	}
	return est.HalfWidth <= r.Epsilon
}

// Snapshot is one element of a convergence stream: the running estimate
// after Completed of Requested samples, plus the rule's verdict at that
// point.
type Snapshot struct {
	// Seq is the 1-based ordinal of this snapshot within its stream.
	Seq int
	// Completed and Requested count samples folded into the tally and the
	// run's hard cap.
	Completed, Requested int
	// Estimate is the running yield estimate over the tally so far.
	Estimate Estimate
	// Stop is the rule's verdict at this snapshot.
	Stop bool
}

// Tracker folds an ordered sequence of cumulative tally checkpoints into
// Snapshots. It enforces the ordering a convergence stream promises its
// consumers: sample counts must be non-decreasing (checkpoints are
// cumulative, so a regression means the producer is broken, not merely
// slow). Tracker is not safe for concurrent use; each stream owns one.
type Tracker struct {
	rule          Rule
	seq           int
	lastCompleted int
}

// NewTracker returns a Tracker applying rule (normalized) to a fresh stream.
func NewTracker(rule Rule) *Tracker {
	return &Tracker{rule: rule.Normalized()}
}

// Observe folds the cumulative tally (successes out of trials) reached
// after completed of requested samples and returns the resulting Snapshot.
// A completed value below the previous observation is rejected — streams
// are cumulative by contract.
func (t *Tracker) Observe(completed, requested, successes, trials int) (Snapshot, error) {
	if completed < t.lastCompleted {
		return Snapshot{}, fmt.Errorf(
			"converge: checkpoint regressed from %d to %d completed samples",
			t.lastCompleted, completed)
	}
	t.lastCompleted = completed
	t.seq++
	est := EstimateOf(successes, trials)
	return Snapshot{
		Seq:       t.seq,
		Completed: completed,
		Requested: requested,
		Estimate:  est,
		Stop:      t.rule.ShouldStop(completed, est),
	}, nil
}

// Rule returns the (normalized) rule the tracker applies.
func (t *Tracker) Rule() Rule { return t.rule }
