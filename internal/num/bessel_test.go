package num

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestBesselI0KnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 1},
		{0.5, 1.0634833707413236},
		{1, 1.2660658777520084},
		{2, 2.2795853023360673},
		{5, 27.239871823604442},
		{10, 2815.716628466254},
	}
	for _, c := range cases {
		if got := BesselI0(c.x); !almostEqual(got, c.want, 5e-7) {
			t.Errorf("I0(%g) = %.10g, want %.10g", c.x, got, c.want)
		}
		// Even function.
		if got := BesselI0(-c.x); !almostEqual(got, c.want, 5e-7) {
			t.Errorf("I0(-%g) = %.10g, want %.10g", c.x, got, c.want)
		}
	}
}

func TestBesselI0ScaledConsistency(t *testing.T) {
	for _, x := range []float64{0, 0.3, 1, 3.7, 4, 10, 50} {
		want := math.Exp(-x) * BesselI0(x)
		if got := BesselI0Scaled(x); !almostEqual(got, want, 1e-6) {
			t.Errorf("I0Scaled(%g) = %g, want %g", x, got, want)
		}
	}
	// Must stay finite where I0 overflows.
	if got := BesselI0Scaled(1e6); math.IsInf(got, 0) || math.IsNaN(got) || got <= 0 {
		t.Errorf("I0Scaled(1e6) = %g", got)
	}
}

func TestRiceCDFReducesToRayleigh(t *testing.T) {
	// ν = 0: Rice → Rayleigh, P(r ≤ x) = 1 − exp(−x²/2σ²).
	sigma := 2.0
	for _, x := range []float64{0.5, 1, 3, 6} {
		want := 1 - math.Exp(-x*x/(2*sigma*sigma))
		if got := RiceCDF(x, 0, sigma); !almostEqual(got, want, 1e-6) {
			t.Errorf("Rayleigh CDF(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestRiceCDFMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	nu, sigma := 3.0, 1.0
	const n = 400000
	for _, x := range []float64{1.5, 3, 4.5} {
		hits := 0
		rngLocal := rng
		for i := 0; i < n; i++ {
			u1 := nu + sigma*rngLocal.NormFloat64()
			u2 := sigma * rngLocal.NormFloat64()
			if math.Hypot(u1, u2) <= x {
				hits++
			}
		}
		mc := float64(hits) / n
		got := RiceCDF(x, nu, sigma)
		if math.Abs(got-mc) > 0.005 {
			t.Errorf("RiceCDF(%g; ν=%g σ=%g) = %g, MC = %g", x, nu, sigma, got, mc)
		}
	}
}

func TestRiceCDFEdgeCases(t *testing.T) {
	if RiceCDF(0, 1, 1) != 0 || RiceCDF(-1, 1, 1) != 0 {
		t.Error("non-positive x should give 0")
	}
	if RiceCDF(2, 1, 0) != 1 {
		t.Error("deterministic |v| inside x should give 1")
	}
	if RiceCDF(0.5, 1, 0) != 0 {
		t.Error("deterministic |v| outside x should give 0")
	}
	// Far above the mass: 1.
	if got := RiceCDF(1e3, 2, 1); !almostEqual(got, 1, 1e-9) {
		t.Errorf("CDF far above = %g", got)
	}
	// Far below: 0.
	if got := RiceCDF(1e-3, 50, 1); got > 1e-9 {
		t.Errorf("CDF far below = %g", got)
	}
	// Large ν/σ ratio (the overlay regime: ν ~ 100 nm, σ ~ 5 nm) must not
	// overflow.
	if got := RiceCDF(150e-9, 140e-9, 5e-9); got < 0.9 || got > 1 {
		t.Errorf("overlay-regime Rice CDF = %g", got)
	}
}

func TestRiceCDFMonotone(t *testing.T) {
	prev := -1.0
	for x := 0.1; x < 8; x += 0.1 {
		v := RiceCDF(x, 2.5, 0.8)
		if v < prev-1e-12 {
			t.Fatalf("Rice CDF decreased at x=%g", x)
		}
		prev = v
	}
}
