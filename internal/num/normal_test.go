package num

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct {
		x, mu, sigma, want float64
	}{
		{0, 0, 1, 0.5},
		{1, 0, 1, 0.8413447460685429},
		{-1, 0, 1, 0.15865525393145705},
		{2, 0, 1, 0.9772498680518208},
		{1.96, 0, 1, 0.9750021048517795},
		{10, 10, 5, 0.5},
		{15, 10, 5, 0.8413447460685429},
	}
	for _, c := range cases {
		got := NormalCDF(c.x, c.mu, c.sigma)
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("NormalCDF(%g, %g, %g) = %.16g, want %.16g", c.x, c.mu, c.sigma, got, c.want)
		}
	}
}

func TestNormalCDFDegenerateSigma(t *testing.T) {
	if got := NormalCDF(1, 2, 0); got != 0 {
		t.Errorf("CDF below point mass = %g, want 0", got)
	}
	if got := NormalCDF(3, 2, 0); got != 1 {
		t.Errorf("CDF above point mass = %g, want 1", got)
	}
	if got := NormalCDF(2, 2, 0); got != 1 {
		t.Errorf("CDF at point mass = %g, want 1", got)
	}
}

func TestStdNormalCDFSymmetry(t *testing.T) {
	f := func(z float64) bool {
		z = math.Mod(z, 10)
		return almostEqual(StdNormalCDF(z)+StdNormalCDF(-z), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalIntervalMatchesCDFDifference(t *testing.T) {
	cases := []struct{ lo, hi, mu, sigma float64 }{
		{-1, 1, 0, 1},
		{0, 2, 1, 0.5},
		{-3, -1, 0, 1},
		{5, 9, 7, 2},
		{-0.5, 0.5, 0, 0.1},
	}
	for _, c := range cases {
		want := NormalCDF(c.hi, c.mu, c.sigma) - NormalCDF(c.lo, c.mu, c.sigma)
		got := NormalInterval(c.lo, c.hi, c.mu, c.sigma)
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("NormalInterval(%v) = %g, want %g", c, got, want)
		}
	}
}

func TestNormalIntervalFarTailPrecision(t *testing.T) {
	// P(8σ ≤ X ≤ 9σ) for a standard normal: the CDF difference underflows
	// to 0 in naive arithmetic; the reflected computation must not.
	got := NormalInterval(8, 9, 0, 1)
	want := 6.2210847e-16 // Φ(-8) − Φ(-9), from erfc
	if got <= 0 {
		t.Fatalf("far-tail interval collapsed to %g", got)
	}
	if !almostEqual(got, want, 1e-6) {
		t.Errorf("far-tail interval = %g, want ≈ %g", got, want)
	}
	// Deeper tail: still finite and positive.
	if got := NormalInterval(20, 21, 0, 1); got <= 0 || math.IsNaN(got) {
		t.Errorf("20σ interval = %g, want positive", got)
	}
}

func TestNormalIntervalEdgeCases(t *testing.T) {
	if got := NormalInterval(1, 1, 0, 1); got != 0 {
		t.Errorf("empty interval = %g, want 0", got)
	}
	if got := NormalInterval(2, 1, 0, 1); got != 0 {
		t.Errorf("inverted interval = %g, want 0", got)
	}
	if got := NormalInterval(-1, 1, 0, 0); got != 1 {
		t.Errorf("degenerate sigma containing mean = %g, want 1", got)
	}
	if got := NormalInterval(1, 2, 0, 0); got != 0 {
		t.Errorf("degenerate sigma excluding mean = %g, want 0", got)
	}
}

func TestNormalIntervalSymmetricProperty(t *testing.T) {
	f := func(a, sigma float64) bool {
		a = math.Abs(math.Mod(a, 6))
		sigma = math.Abs(math.Mod(sigma, 4)) + 0.01
		// Symmetric interval probability must match 2Φ(a/σ)−1.
		got := NormalInterval(-a, a, 0, sigma)
		want := 2*StdNormalCDF(a/sigma) - 1
		return almostEqual(got, want, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStdNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-12, 1e-6, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1 - 1e-6, 1 - 1e-12} {
		z := StdNormalQuantile(p)
		back := StdNormalCDF(z)
		if !almostEqual(back, p, 1e-9) {
			t.Errorf("CDF(Quantile(%g)) = %g", p, back)
		}
	}
}

func TestStdNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.8413447460685429, 1},
		{0.9750021048517795, 1.96},
		{0.15865525393145705, -1},
	}
	for _, c := range cases {
		if got := StdNormalQuantile(c.p); !almostEqual(got, c.want, 1e-8) && math.Abs(got-c.want) > 1e-8 {
			t.Errorf("Quantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestStdNormalQuantileEdgeCases(t *testing.T) {
	if !math.IsInf(StdNormalQuantile(0), -1) {
		t.Error("Quantile(0) should be -Inf")
	}
	if !math.IsInf(StdNormalQuantile(1), 1) {
		t.Error("Quantile(1) should be +Inf")
	}
	if !math.IsNaN(StdNormalQuantile(-0.1)) || !math.IsNaN(StdNormalQuantile(1.1)) {
		t.Error("out-of-range p should give NaN")
	}
	if !math.IsNaN(StdNormalQuantile(math.NaN())) {
		t.Error("NaN p should give NaN")
	}
}

func TestStdNormalQuantileSymmetry(t *testing.T) {
	f := func(p float64) bool {
		p = math.Abs(math.Mod(p, 1))
		if p == 0 || p == 1 {
			return true
		}
		return almostEqual(StdNormalQuantile(p), -StdNormalQuantile(1-p), 1e-8) ||
			math.Abs(StdNormalQuantile(p)+StdNormalQuantile(1-p)) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
