package num

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MSE returns the mean squared error between paired slices a and b.
// The slices must have equal, nonzero length; otherwise NaN is returned.
func MSE(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a))
}

// Pearson returns the Pearson correlation coefficient of paired slices.
// Returns NaN when undefined (length mismatch, n < 2, or zero variance).
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return math.NaN()
	}
	ma, mb := Mean(a), Mean(b)
	var sab, saa, sbb float64
	for i := range a {
		da := a[i] - ma
		db := b[i] - mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return math.NaN()
	}
	return sab / math.Sqrt(saa*sbb)
}

// LinearFit returns the least-squares slope and intercept of y against x.
// Both NaN when undefined.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN(), math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx float64
	for i := range x {
		dx := x[i] - mx
		sxy += dx * (y[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return math.NaN(), math.NaN()
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	return slope, intercept
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs need not be sorted. Returns
// NaN for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return s[n-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Clamp limits x to the interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// WilsonInterval returns the Wilson score 95% confidence interval for a
// binomial proportion with k successes out of n trials. It is used to
// report simulator yields with honest error bars (yields near 0 or 1 are
// exactly where the naive normal interval fails).
func WilsonInterval(k, n int) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	const z = 1.959963984540054 // 97.5th percentile of N(0,1)
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	lo = Clamp(center-half, 0, 1)
	hi = Clamp(center+half, 0, 1)
	return lo, hi
}
