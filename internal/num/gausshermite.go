package num

import "math"

// ghNodes7 and ghWeights7 are the 7-point Gauss–Hermite nodes and weights
// for ∫ e^(−x²) f(x) dx (physicists' convention, positive half; the rule is
// symmetric and includes the origin).
var ghNodes7 = [4]float64{
	0,
	0.8162878828589647,
	1.6735516287674714,
	2.6519613568352334,
}

var ghWeights7 = [4]float64{
	0.8102646175568073,
	0.4256072526101278,
	0.0545155828191270,
	0.0009717812450995,
}

// invSqrtPi is 1/√π, the normalization of the Gauss–Hermite measure.
const invSqrtPi = 0.5641895835477563

// ExpectNormal1 returns E[g(X)] for X ~ N(mu, sigma²) using the 7-point
// Gauss–Hermite rule, exact for polynomial g up to degree 13. A zero sigma
// collapses to g(mu).
func ExpectNormal1(g func(float64) float64, mu, sigma float64) float64 {
	if sigma == 0 {
		return g(mu)
	}
	scale := math.Sqrt2 * sigma
	sum := ghWeights7[0] * g(mu)
	for i := 1; i < 4; i++ {
		d := scale * ghNodes7[i]
		sum += ghWeights7[i] * (g(mu+d) + g(mu-d))
	}
	return sum * invSqrtPi
}

// ExpectNormal returns E[g(X₁,…,X_k)] for independent X_i ~ N(mu[i],
// sigma[i]²) via a tensor-product 7-point Gauss–Hermite rule. Dimensions
// with sigma[i] = 0 contribute a single node, so degenerate (deterministic)
// parameters cost nothing.
//
// It backs the D2W overlay model, where per-die placement draws of
// translation, rotation and warpage must be averaged analytically to keep
// the model's >10⁴× speed advantage over simulation.
func ExpectNormal(g func(x []float64) float64, mu, sigma []float64) float64 {
	if len(mu) != len(sigma) {
		// Unreachable from the model: every caller builds mu and sigma
		// side by side with identical lengths; a mismatch is a programming
		// error in new code, best caught loudly.
		panic("num: ExpectNormal mu/sigma length mismatch") //yaplint:allow no-naked-panic caller-constructed slices, lengths fixed at the call site
	}
	x := make([]float64, len(mu))
	return expectNormalRec(g, mu, sigma, x, 0)
}

// ExpectNormalAdaptive returns E[g(X)] for X ~ N(mu, sigma²) by adaptive
// Simpson integration of g against the normal density over ±8σ. Unlike the
// fixed Gauss–Hermite rule it resolves near-discontinuous g (yield
// indicators smoothed over a few nanometers of misalignment), at the cost
// of more evaluations; use it for the one or two dimensions whose spread
// dwarfs the indicator's transition width.
func ExpectNormalAdaptive(g func(float64) float64, mu, sigma float64) float64 {
	if sigma == 0 {
		return g(mu)
	}
	f := func(x float64) float64 {
		z := (x - mu) / sigma
		return g(x) * math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
	}
	const span = 7.0
	// g is bounded by O(1) in yield use; 1e-6 absolute keeps the quadrature
	// error three orders below the Monte-Carlo noise it is compared to,
	// without over-refining (each g evaluation may itself be a quadrature).
	return Integrate(f, mu-span*sigma, mu+span*sigma, 1e-6)
}

func expectNormalRec(g func(x []float64) float64, mu, sigma, x []float64, dim int) float64 {
	if dim == len(mu) {
		return g(x)
	}
	if sigma[dim] == 0 {
		x[dim] = mu[dim]
		return expectNormalRec(g, mu, sigma, x, dim+1)
	}
	scale := math.Sqrt2 * sigma[dim]
	x[dim] = mu[dim]
	sum := ghWeights7[0] * expectNormalRec(g, mu, sigma, x, dim+1)
	for i := 1; i < 4; i++ {
		d := scale * ghNodes7[i]
		x[dim] = mu[dim] + d
		sum += ghWeights7[i] * expectNormalRec(g, mu, sigma, x, dim+1)
		x[dim] = mu[dim] - d
		sum += ghWeights7[i] * expectNormalRec(g, mu, sigma, x, dim+1)
	}
	return sum * invSqrtPi
}
