package num

import (
	"errors"
	"fmt"
	"math"
)

// Histogram accumulates samples into equal-width bins over [Min, Max).
// Samples outside the range are counted in Under/Over rather than dropped,
// so totals always reconcile. It backs the distribution-validation figures
// (Fig. 8a void-tail lengths, Fig. 9a main-void sizes).
type Histogram struct {
	Min, Max float64
	Counts   []int
	Under    int
	Over     int
	N        int
}

// ErrBadHistogram reports an invalid histogram specification (bins < 1 or
// an empty range). Callers match it with errors.Is.
var ErrBadHistogram = errors.New("num: invalid histogram specification")

// NewHistogram creates a histogram with the given number of bins spanning
// [min, max). It returns an error wrapping ErrBadHistogram if bins < 1 or
// max ≤ min: figure ranges are often derived from model parameters (tail
// knees, minimum void radii), so a degenerate range is a data condition the
// caller can report, not a programmer error worth crashing for.
func NewHistogram(min, max float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("%w: needs at least one bin, got %d", ErrBadHistogram, bins)
	}
	if !(max > min) {
		return nil, fmt.Errorf("%w: empty range [%g, %g)", ErrBadHistogram, min, max)
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.N++
	switch {
	case math.IsNaN(x):
		h.Under++ // NaN is unclassifiable; count low so totals reconcile
	case x < h.Min:
		h.Under++
	case x >= h.Max:
		h.Over++
	default:
		i := int((x - h.Min) / h.BinWidth())
		if i >= len(h.Counts) { // guard against float rounding at h.Max
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 {
	return (h.Max - h.Min) / float64(len(h.Counts))
}

// BinCenter returns the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Min + (float64(i)+0.5)*h.BinWidth()
}

// Density returns the empirical probability density of bin i, normalized so
// that the histogram integrates to the in-range fraction of samples.
func (h *Histogram) Density(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / (float64(h.N) * h.BinWidth())
}

// Densities returns the per-bin empirical densities.
func (h *Histogram) Densities() []float64 {
	d := make([]float64, len(h.Counts))
	for i := range h.Counts {
		d[i] = h.Density(i)
	}
	return d
}

// Centers returns the per-bin centers.
func (h *Histogram) Centers() []float64 {
	c := make([]float64, len(h.Counts))
	for i := range h.Counts {
		c[i] = h.BinCenter(i)
	}
	return c
}

// InRange returns the number of samples that fell inside [Min, Max).
func (h *Histogram) InRange() int { return h.N - h.Under - h.Over }
