package num

import "math"

// Integrate computes ∫_a^b f(x) dx with adaptive Simpson quadrature to the
// requested absolute tolerance. It is the workhorse behind the defect-model
// Λ integrals (Eq. 20, 26 of the paper).
//
// The routine is robust to a > b (returns the negated integral) and to
// integrable endpoint behaviour as long as f is finite on (a,b).
func Integrate(f func(float64) float64, a, b, tol float64) float64 {
	if a == b {
		return 0
	}
	if tol <= 0 {
		tol = 1e-12
	}
	sign := 1.0
	if a > b {
		a, b = b, a
		sign = -1
	}
	fa, fb := f(a), f(b)
	m := 0.5 * (a + b)
	fm := f(m)
	whole := simpson(a, b, fa, fm, fb)
	// The budget bounds total work on pathological integrands (divergent
	// tails, misconfigured scales): once exhausted, remaining panels return
	// their best current estimate instead of refining further.
	budget := 2_000_000
	return sign * adaptiveSimpson(f, a, b, fa, fm, fb, whole, tol, 52, &budget)
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptiveSimpson(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int, budget *int) float64 {
	m := 0.5 * (a + b)
	lm := 0.5 * (a + m)
	rm := 0.5 * (m + b)
	flm, frm := f(lm), f(rm)
	*budget -= 2
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	if depth <= 0 || *budget <= 0 {
		return left + right
	}
	delta := left + right - whole
	if math.Abs(delta) <= 15*tol {
		return left + right + delta/15
	}
	return adaptiveSimpson(f, a, m, fa, flm, fm, left, tol/2, depth-1, budget) +
		adaptiveSimpson(f, m, b, fm, frm, fb, right, tol/2, depth-1, budget)
}

// gl20Nodes and gl20Weights are the 20-point Gauss–Legendre nodes and
// weights on [-1, 1] (positive half; the rule is symmetric).
var gl20Nodes = [10]float64{
	0.0765265211334973, 0.2277858511416451, 0.3737060887154195,
	0.5108670019508271, 0.6360536807265150, 0.7463319064601508,
	0.8391169718222188, 0.9122344282513259, 0.9639719272779138,
	0.9931285991850949,
}

var gl20Weights = [10]float64{
	0.1527533871307258, 0.1491729864726037, 0.1420961093183820,
	0.1316886384491766, 0.1181945319615184, 0.1019301198172404,
	0.0832767415767048, 0.0626720483341091, 0.0406014298003869,
	0.0176140071391521,
}

// GaussLegendre20 computes ∫_a^b f(x) dx with a single 20-point
// Gauss–Legendre rule. It is exact for polynomials up to degree 39 and is
// used where the integrand is known to be smooth and speed matters (the
// model is timed against the simulator, so the quadrature inside it should
// not be adaptive unless necessary).
func GaussLegendre20(f func(float64) float64, a, b float64) float64 {
	c := 0.5 * (a + b)
	h := 0.5 * (b - a)
	var sum float64
	for i := 0; i < 10; i++ {
		x := h * gl20Nodes[i]
		sum += gl20Weights[i] * (f(c+x) + f(c-x))
	}
	return sum * h
}

// IntegrateToInfinity computes ∫_a^∞ f(x) dx for an integrand with
// power-law or faster decay by mapping x = a + s·t/(1-t) onto t ∈ [0,1)
// and integrating adaptively. Used for the tail portions of the
// defect-model integrals where the paper integrates to infinity.
//
// scale sets the substitution's characteristic length s and should match
// the decay scale of f beyond a; a mismatched scale concentrates all the
// integrand's variation in a sliver of [0,1) and forces pathological
// recursion depth. Non-positive scales fall back to max(|a|, 1).
func IntegrateToInfinity(f func(float64) float64, a, scale, tol float64) float64 {
	if scale <= 0 {
		scale = math.Max(math.Abs(a), 1)
	}
	g := func(t float64) float64 {
		if t >= 1 {
			return 0
		}
		den := 1 - t
		x := a + scale*t/den
		return f(x) * scale / (den * den)
	}
	return Integrate(g, 0, 1, tol)
}

// Brent finds a root of f in [a, b] using Brent's method. f(a) and f(b)
// must have opposite signs; otherwise ErrNoBracket is returned. tol is the
// absolute tolerance on the root location.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-14
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, ErrNoBracket
	}
	c, fc := a, fa
	d, e := b-a, b-a
	const maxIter = 200
	for i := 0; i < maxIter; i++ {
		if (fb > 0) == (fc > 0) {
			c, fc = a, fa
			d, e = b-a, b-a
		}
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*math.SmallestNonzeroFloat64*math.Abs(b) + 0.5*tol
		xm := 0.5 * (c - b)
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			// Attempt inverse quadratic interpolation.
			s := fb / fa
			var p, q float64
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			if 2*p < math.Min(3*xm*q-math.Abs(tol1*q), math.Abs(e*q)) {
				e, d = d, p/q
			} else {
				d, e = xm, xm
			}
		} else {
			d, e = xm, xm
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else {
			b += math.Copysign(tol1, xm)
		}
		fb = f(b)
	}
	return b, ErrNoConverge
}

// BisectMonotone finds x ∈ [a,b] with f(x) = target for a monotone f, by
// bisection. It does not require a strict sign bracket: if the target lies
// outside f's range on [a,b], the nearer endpoint is returned. Used for the
// δ_ca solve (Eq. 6) where the contact-area curve is monotone decreasing and
// the constraint can saturate at either end.
func BisectMonotone(f func(float64) float64, a, b, target, tol float64) float64 {
	fa, fb := f(a), f(b)
	increasing := fb >= fa
	lo, hi := a, b
	// Saturation checks.
	if increasing {
		if target <= fa {
			return a
		}
		if target >= fb {
			return b
		}
	} else {
		if target >= fa {
			return a
		}
		if target <= fb {
			return b
		}
	}
	for hi-lo > tol {
		mid := 0.5 * (lo + hi)
		fm := f(mid)
		if (fm < target) == increasing {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}
