package num

import (
	"math"
	"testing"
)

func TestExpectNormal1Moments(t *testing.T) {
	mu, sigma := 3.0, 2.0
	cases := []struct {
		name string
		g    func(float64) float64
		want float64
	}{
		{"constant", func(x float64) float64 { return 7 }, 7},
		{"identity", func(x float64) float64 { return x }, mu},
		{"square", func(x float64) float64 { return x * x }, mu*mu + sigma*sigma},
		{"cube", func(x float64) float64 { return x * x * x }, mu*mu*mu + 3*mu*sigma*sigma},
		{"fourth central", func(x float64) float64 { d := x - mu; return d * d * d * d }, 3 * sigma * sigma * sigma * sigma},
	}
	for _, c := range cases {
		if got := ExpectNormal1(c.g, mu, sigma); !almostEqual(got, c.want, 1e-10) {
			t.Errorf("%s: got %g, want %g", c.name, got, c.want)
		}
	}
}

func TestExpectNormal1DegenerateSigma(t *testing.T) {
	if got := ExpectNormal1(func(x float64) float64 { return x * x }, 5, 0); got != 25 {
		t.Errorf("degenerate sigma: got %g, want 25", got)
	}
}

func TestExpectNormalMultiDim(t *testing.T) {
	// E[X·Y + X²] for independent X~N(1,2²), Y~N(3,1²) = 1·3 + (1+4) = 8.
	got := ExpectNormal(func(x []float64) float64 {
		return x[0]*x[1] + x[0]*x[0]
	}, []float64{1, 3}, []float64{2, 1})
	if !almostEqual(got, 8, 1e-10) {
		t.Errorf("2-dim expectation = %g, want 8", got)
	}
}

func TestExpectNormalMixedDegenerate(t *testing.T) {
	// Middle dimension deterministic.
	got := ExpectNormal(func(x []float64) float64 {
		return x[0] + x[1] + x[2]*x[2]
	}, []float64{1, 10, 0}, []float64{1, 0, 3})
	if !almostEqual(got, 1+10+9, 1e-10) {
		t.Errorf("mixed expectation = %g, want 20", got)
	}
}

func TestExpectNormalPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mu/sigma length mismatch")
		}
	}()
	ExpectNormal(func(x []float64) float64 { return 0 }, []float64{1}, []float64{1, 2})
}

func TestExpectNormalGaussianOfGaussian(t *testing.T) {
	// E[exp(−X²/2)] for X~N(0,σ²) = 1/√(1+σ²) — a smooth nonpolynomial
	// where GH-7 should be near exact for modest σ.
	sigma := 0.8
	got := ExpectNormal1(func(x float64) float64 { return math.Exp(-x * x / 2) }, 0, sigma)
	want := 1 / math.Sqrt(1+sigma*sigma)
	// A 7-point rule is not exact for this integrand; ~1e-4 relative is
	// its expected accuracy at σ ≈ 0.8.
	if !almostEqual(got, want, 1e-4) {
		t.Errorf("E[exp(-X²/2)] = %g, want %g", got, want)
	}
}

func TestExpectNormalAdaptiveIndicator(t *testing.T) {
	// E[1{X ≤ a}] = Φ((a−µ)/σ): the step function that defeats fixed
	// Gauss–Hermite rules and motivated the adaptive path.
	mu, sigma, a := 1.0, 0.5, 1.3
	got := ExpectNormalAdaptive(func(x float64) float64 {
		if x <= a {
			return 1
		}
		return 0
	}, mu, sigma)
	want := StdNormalCDF((a - mu) / sigma)
	if !almostEqual(got, want, 1e-6) {
		t.Errorf("indicator expectation = %.10g, want %.10g", got, want)
	}
}

func TestExpectNormalAdaptiveMatchesGHOnSmooth(t *testing.T) {
	g := func(x float64) float64 { return math.Sin(x) + x*x }
	mu, sigma := 0.3, 1.1
	gh := ExpectNormal1(g, mu, sigma)
	ad := ExpectNormalAdaptive(g, mu, sigma)
	if !almostEqual(gh, ad, 1e-5) {
		t.Errorf("GH %g vs adaptive %g", gh, ad)
	}
}

func TestExpectNormalAdaptiveDegenerate(t *testing.T) {
	if got := ExpectNormalAdaptive(func(x float64) float64 { return 2 * x }, 4, 0); got != 8 {
		t.Errorf("degenerate adaptive = %g, want 8", got)
	}
}
