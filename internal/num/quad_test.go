package num

import (
	"math"
	"testing"
	"time"
)

// timeAfter returns a channel firing after the given number of seconds.
func timeAfter(seconds int) <-chan time.Time {
	return time.After(time.Duration(seconds) * time.Second)
}

func TestIntegratePolynomial(t *testing.T) {
	// ∫₀¹ (3x² + 2x + 1) dx = 3.
	got := Integrate(func(x float64) float64 { return 3*x*x + 2*x + 1 }, 0, 1, 1e-12)
	if !almostEqual(got, 3, 1e-10) {
		t.Errorf("polynomial integral = %.15g, want 3", got)
	}
}

func TestIntegrateTranscendental(t *testing.T) {
	// ∫₀^π sin x dx = 2.
	got := Integrate(math.Sin, 0, math.Pi, 1e-12)
	if !almostEqual(got, 2, 1e-10) {
		t.Errorf("∫ sin = %.15g, want 2", got)
	}
	// ∫₀¹ e^x dx = e − 1.
	got = Integrate(math.Exp, 0, 1, 1e-12)
	if !almostEqual(got, math.E-1, 1e-10) {
		t.Errorf("∫ exp = %.15g, want %.15g", got, math.E-1)
	}
}

func TestIntegrateReversedLimits(t *testing.T) {
	fwd := Integrate(math.Exp, 0, 1, 1e-12)
	rev := Integrate(math.Exp, 1, 0, 1e-12)
	if !almostEqual(fwd, -rev, 1e-10) {
		t.Errorf("reversed limits: %g vs %g", fwd, rev)
	}
}

func TestIntegrateEmptyInterval(t *testing.T) {
	if got := Integrate(math.Exp, 2, 2, 1e-12); got != 0 {
		t.Errorf("empty interval integral = %g, want 0", got)
	}
}

func TestIntegrateSharpFeature(t *testing.T) {
	// A narrow Gaussian bump inside a wide interval: adaptive refinement
	// must find it. ∫ exp(−(x−5)²/(2·0.01²))·dx over [0,10] = 0.01·√(2π).
	sigma := 0.01
	f := func(x float64) float64 {
		z := (x - 5) / sigma
		return math.Exp(-0.5 * z * z)
	}
	want := sigma * math.Sqrt(2*math.Pi)
	got := Integrate(f, 0, 10, 1e-12)
	if !almostEqual(got, want, 1e-6) {
		t.Errorf("sharp bump integral = %g, want %g", got, want)
	}
}

func TestGaussLegendre20Polynomial(t *testing.T) {
	// Exact for degree ≤ 39: check x^10 over [0, 2] = 2^11/11.
	got := GaussLegendre20(func(x float64) float64 { return math.Pow(x, 10) }, 0, 2)
	want := math.Pow(2, 11) / 11
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("GL20 x^10 = %.15g, want %.15g", got, want)
	}
}

func TestGaussLegendre20MatchesAdaptive(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(-x) * math.Cos(3*x) }
	gl := GaussLegendre20(f, 0, 2)
	ad := Integrate(f, 0, 2, 1e-13)
	if !almostEqual(gl, ad, 1e-10) {
		t.Errorf("GL20 = %.15g, adaptive = %.15g", gl, ad)
	}
}

func TestIntegrateToInfinityPowerLaw(t *testing.T) {
	// ∫₁^∞ x⁻³ dx = 1/2.
	got := IntegrateToInfinity(func(x float64) float64 { return math.Pow(x, -3) }, 1, 1, 1e-12)
	if !almostEqual(got, 0.5, 1e-8) {
		t.Errorf("∫ x^-3 = %g, want 0.5", got)
	}
}

func TestIntegrateToInfinityExponential(t *testing.T) {
	// ∫₀^∞ e^(−x) dx = 1.
	got := IntegrateToInfinity(func(x float64) float64 { return math.Exp(-x) }, 0, 1, 1e-12)
	if !almostEqual(got, 1, 1e-8) {
		t.Errorf("∫ e^-x = %g, want 1", got)
	}
}

func TestIntegrateBudgetTerminatesOnPathology(t *testing.T) {
	// A divergent integrand mapped to infinity must terminate (returning a
	// large garbage value) rather than recurse forever.
	done := make(chan float64, 1)
	go func() {
		done <- IntegrateToInfinity(math.Exp, 0, 1, 1e-12)
	}()
	select {
	case <-done:
		// Terminated; the value is meaningless by construction.
	case <-timeAfter(30):
		t.Fatal("integrator did not terminate on divergent integrand")
	}
}

func TestIntegrateToInfinitySmallScale(t *testing.T) {
	// An integrand living at the 1e-4 scale (the defect-model regime):
	// ∫_a^∞ e^(−(x−a)/s) dx = s with a = 2.3e-4, s = 1e-4. The scale-aware
	// substitution must resolve it without pathological recursion.
	a, s := 2.3e-4, 1e-4
	f := func(x float64) float64 { return math.Exp(-(x - a) / s) }
	got := IntegrateToInfinity(f, a, s, 1e-16)
	if !almostEqual(got, s, 1e-8) {
		t.Errorf("small-scale tail integral = %g, want %g", got, s)
	}
}

func TestBrentFindsRoots(t *testing.T) {
	cases := []struct {
		f        func(float64) float64
		a, b     float64
		wantRoot float64
	}{
		{func(x float64) float64 { return x*x - 2 }, 0, 2, math.Sqrt2},
		{math.Cos, 1, 2, math.Pi / 2},
		{func(x float64) float64 { return math.Exp(x) - 3 }, 0, 2, math.Log(3)},
		{func(x float64) float64 { return x }, -1, 1, 0},
	}
	for i, c := range cases {
		got, err := Brent(c.f, c.a, c.b, 1e-13)
		if err != nil {
			t.Errorf("case %d: %v", i, err)
			continue
		}
		if !almostEqual(got, c.wantRoot, 1e-9) {
			t.Errorf("case %d: root = %.15g, want %.15g", i, got, c.wantRoot)
		}
	}
}

func TestBrentEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x - 1 }
	if r, err := Brent(f, 1, 2, 1e-12); err != nil || r != 1 {
		t.Errorf("root at left endpoint: r=%g err=%v", r, err)
	}
	if r, err := Brent(f, 0, 1, 1e-12); err != nil || r != 1 {
		t.Errorf("root at right endpoint: r=%g err=%v", r, err)
	}
}

func TestBrentNoBracket(t *testing.T) {
	if _, err := Brent(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12); err != ErrNoBracket {
		t.Errorf("expected ErrNoBracket, got %v", err)
	}
}

func TestBisectMonotoneDecreasing(t *testing.T) {
	// f(x) = 10 − x on [0, 10]; target 4 ⇒ x = 6.
	f := func(x float64) float64 { return 10 - x }
	got := BisectMonotone(f, 0, 10, 4, 1e-12)
	if !almostEqual(got, 6, 1e-9) {
		t.Errorf("decreasing bisect = %g, want 6", got)
	}
}

func TestBisectMonotoneIncreasing(t *testing.T) {
	got := BisectMonotone(math.Sqrt, 0, 100, 5, 1e-12)
	if !almostEqual(got, 25, 1e-7) {
		t.Errorf("increasing bisect = %g, want 25", got)
	}
}

func TestBisectMonotoneSaturation(t *testing.T) {
	f := func(x float64) float64 { return x }
	if got := BisectMonotone(f, 2, 5, 1, 1e-12); got != 2 {
		t.Errorf("target below range: got %g, want left endpoint 2", got)
	}
	if got := BisectMonotone(f, 2, 5, 9, 1e-12); got != 5 {
		t.Errorf("target above range: got %g, want right endpoint 5", got)
	}
	g := func(x float64) float64 { return -x }
	if got := BisectMonotone(g, 2, 5, -1, 1e-12); got != 2 {
		t.Errorf("decreasing, target above range: got %g, want 2", got)
	}
	if got := BisectMonotone(g, 2, 5, -9, 1e-12); got != 5 {
		t.Errorf("decreasing, target below range: got %g, want 5", got)
	}
}

func TestIntegrateGaussianDensityIsOne(t *testing.T) {
	for _, sigma := range []float64{0.1, 1, 10, 1e-6} {
		f := func(x float64) float64 {
			z := x / sigma
			return math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
		}
		got := Integrate(f, -10*sigma, 10*sigma, 1e-12)
		if !almostEqual(got, 1, 1e-9) {
			t.Errorf("gaussian mass (sigma=%g) = %.12g, want 1", sigma, got)
		}
	}
}
