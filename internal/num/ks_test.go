package num

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestKSUniformSamplesAccepted(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	n := 5000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = rng.Float64()
	}
	d, p := KolmogorovSmirnov(samples, func(x float64) float64 { return Clamp(x, 0, 1) })
	if d > 0.03 {
		t.Errorf("uniform KS D = %g, implausibly large", d)
	}
	if p < 0.001 {
		t.Errorf("uniform samples rejected: p = %g", p)
	}
}

func TestKSWrongDistributionRejected(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	n := 5000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = rng.Float64() * rng.Float64() // triangular-ish, not uniform
	}
	_, p := KolmogorovSmirnov(samples, func(x float64) float64 { return Clamp(x, 0, 1) })
	if p > 1e-6 {
		t.Errorf("wrong distribution not rejected: p = %g", p)
	}
}

func TestKSNormalSamples(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	n := 3000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = 2 + 0.5*rng.NormFloat64()
	}
	d, p := KolmogorovSmirnov(samples, func(x float64) float64 {
		return NormalCDF(x, 2, 0.5)
	})
	if p < 0.001 {
		t.Errorf("normal samples rejected: D = %g, p = %g", d, p)
	}
}

func TestKSEmpty(t *testing.T) {
	d, p := KolmogorovSmirnov(nil, func(x float64) float64 { return x })
	if !math.IsNaN(d) || !math.IsNaN(p) {
		t.Error("empty sample should give NaN")
	}
}

func TestKSDoesNotMutateInput(t *testing.T) {
	samples := []float64{0.9, 0.1, 0.5}
	KolmogorovSmirnov(samples, func(x float64) float64 { return x })
	if samples[0] != 0.9 || samples[1] != 0.1 {
		t.Error("input mutated")
	}
}

func TestKolmogorovQ(t *testing.T) {
	// Known points of the Kolmogorov distribution.
	cases := []struct{ lambda, want float64 }{
		{0.5, 0.9639},
		{1.0, 0.2700},
		{1.36, 0.0490}, // the classic 5% critical value
		{2.0, 0.00067},
	}
	for _, c := range cases {
		if got := kolmogorovQ(c.lambda); math.Abs(got-c.want) > 0.002 {
			t.Errorf("Q(%g) = %g, want %g", c.lambda, got, c.want)
		}
	}
	if kolmogorovQ(0) != 1 {
		t.Error("Q(0) should be 1")
	}
}
