package num

import (
	"errors"
	"math"
	"testing"
)

func TestHistogramBinning(t *testing.T) {
	h := mustHistogram(t, 0, 10, 10)
	for _, x := range []float64{0, 0.5, 1, 5.5, 9.9999} {
		h.Add(x)
	}
	if h.Counts[0] != 2 {
		t.Errorf("bin 0 count = %d, want 2 (0 and 0.5)", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.N != 5 || h.InRange() != 5 {
		t.Errorf("N=%d InRange=%d", h.N, h.InRange())
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := mustHistogram(t, 0, 1, 4)
	h.Add(-0.1)
	h.Add(1.0) // max is exclusive
	h.Add(2)
	h.Add(0.5)
	h.Add(math.NaN())
	if h.Under != 2 { // -0.1 and NaN
		t.Errorf("under = %d, want 2", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("over = %d, want 2", h.Over)
	}
	if h.InRange() != 1 {
		t.Errorf("in-range = %d, want 1", h.InRange())
	}
}

func TestHistogramDensityNormalization(t *testing.T) {
	h := mustHistogram(t, 0, 1, 20)
	n := 10000
	for i := 0; i < n; i++ {
		h.Add(float64(i) / float64(n))
	}
	var integral float64
	for i := range h.Counts {
		integral += h.Density(i) * h.BinWidth()
	}
	if !almostEqual(integral, 1, 1e-9) {
		t.Errorf("density integrates to %g, want 1", integral)
	}
}

func TestHistogramCentersAndWidth(t *testing.T) {
	h := mustHistogram(t, 2, 4, 4)
	if !almostEqual(h.BinWidth(), 0.5, 1e-15) {
		t.Errorf("bin width = %g", h.BinWidth())
	}
	want := []float64{2.25, 2.75, 3.25, 3.75}
	for i, c := range h.Centers() {
		if !almostEqual(c, want[i], 1e-12) {
			t.Errorf("center[%d] = %g, want %g", i, c, want[i])
		}
	}
	if len(h.Densities()) != 4 {
		t.Error("densities length mismatch")
	}
}

func TestHistogramErrorsOnBadConstruction(t *testing.T) {
	for name, build := range map[string]func() (*Histogram, error){
		"zero bins":      func() (*Histogram, error) { return NewHistogram(0, 1, 0) },
		"inverted range": func() (*Histogram, error) { return NewHistogram(1, 0, 5) },
	} {
		h, err := build()
		if h != nil || err == nil {
			t.Errorf("%s: got (%v, %v), want nil + error", name, h, err)
			continue
		}
		if !errors.Is(err, ErrBadHistogram) {
			t.Errorf("%s: errors.Is(err, ErrBadHistogram) = false for %v", name, err)
		}
	}
}

// mustHistogram builds a histogram whose specification the test knows to be
// valid.
func mustHistogram(t *testing.T, min, max float64, bins int) *Histogram {
	t.Helper()
	h, err := NewHistogram(min, max, bins)
	if err != nil {
		t.Fatalf("NewHistogram(%g, %g, %d): %v", min, max, bins, err)
	}
	return h
}

func TestHistogramEdgeRoundingGuard(t *testing.T) {
	// A value that floats to exactly Max after the division must land in
	// the last bin, not out of range.
	h := mustHistogram(t, 0, 0.3, 3)
	h.Add(math.Nextafter(0.3, 0)) // just below max
	if h.Counts[2] != 1 || h.Over != 0 {
		t.Errorf("near-max sample mishandled: counts=%v over=%d", h.Counts, h.Over)
	}
}
