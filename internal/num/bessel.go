package num

import "math"

// BesselI0 returns the modified Bessel function of the first kind, order
// zero, I₀(x). Abramowitz & Stegun 9.8.1–9.8.2 polynomial approximations
// (|ε| < 2e-7 relative), the standard choice for Rice-distribution work.
func BesselI0(x float64) float64 {
	ax := math.Abs(x)
	if ax < 3.75 {
		t := x / 3.75
		t *= t
		return 1 + t*(3.5156229+t*(3.0899424+t*(1.2067492+
			t*(0.2659732+t*(0.0360768+t*0.0045813)))))
	}
	t := 3.75 / ax
	return math.Exp(ax) / math.Sqrt(ax) *
		(0.39894228 + t*(0.01328592+t*(0.00225319+t*(-0.00157565+
			t*(0.00916281+t*(-0.02057706+t*(0.02635537+
				t*(-0.01647633+t*0.00392377))))))))
}

// BesselI0Scaled returns e^(−|x|)·I₀(x), which stays finite for the large
// arguments the Rice integrand produces (I₀ alone overflows past x ≈ 713).
func BesselI0Scaled(x float64) float64 {
	ax := math.Abs(x)
	if ax < 3.75 {
		return math.Exp(-ax) * BesselI0(x)
	}
	t := 3.75 / ax
	return (0.39894228 + t*(0.01328592+t*(0.00225319+t*(-0.00157565+
		t*(0.00916281+t*(-0.02057706+t*(0.02635537+
			t*(-0.01647633+t*0.00392377)))))))) / math.Sqrt(ax)
}

// RiceCDF returns P(|v⃗ + u⃗| ≤ x) where v⃗ has magnitude nu and
// u⃗ = (u₁, u₂) with independent N(0, σ²) components — the Rice
// distribution's CDF. It is the exact 2-D counterpart of the paper's
// scalar overlay survival integral (Eq. 1), used to price the scalar
// convention analytically.
//
// Evaluated by adaptive quadrature of the Rice density
// f(r) = (r/σ²)·exp(−(r²+ν²)/2σ²)·I₀(rν/σ²) with the exponentially scaled
// Bessel to avoid overflow.
func RiceCDF(x, nu, sigma float64) float64 {
	if x <= 0 {
		return 0
	}
	if sigma <= 0 {
		if math.Abs(nu) <= x {
			return 1
		}
		return 0
	}
	nu = math.Abs(nu)
	s2 := sigma * sigma
	f := func(r float64) float64 {
		if r <= 0 {
			return 0
		}
		arg := r * nu / s2
		// r/σ²·exp(−(r²+ν²)/2σ²)·I₀(arg)
		//   = r/σ²·exp(−(r−ν)²/2σ²)·[e^(−arg)·I₀(arg)]
		return r / s2 * math.Exp(-(r-nu)*(r-nu)/(2*s2)) * BesselI0Scaled(arg)
	}
	// The density is concentrated within a few σ of ν; cap the domain.
	hi := math.Min(x, nu+10*sigma)
	lo := math.Max(0, nu-10*sigma)
	if hi <= lo {
		if x >= nu {
			return 1 // entire mass is below x
		}
		return 0
	}
	v := Integrate(f, lo, hi, 1e-10)
	return Clamp(v, 0, 1)
}
