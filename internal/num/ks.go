package num

import (
	"math"
	"sort"
)

// KolmogorovSmirnov returns the one-sample Kolmogorov–Smirnov statistic
// D_n = sup_x |F_n(x) − F(x)| of the samples against the analytic CDF,
// together with the asymptotic p-value P(D > D_n). It is the
// distribution-level acceptance test behind the Fig. 8a / Fig. 9a
// comparisons: a correct void-size law must not be rejected at any
// reasonable significance.
//
// The p-value uses the Kolmogorov asymptotic with the Stephens finite-n
// correction λ = (√n + 0.12 + 0.11/√n)·D, accurate for n ≳ 80.
func KolmogorovSmirnov(samples []float64, cdf func(float64) float64) (d, pValue float64) {
	n := len(samples)
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	s := make([]float64, n)
	copy(s, samples)
	sort.Float64s(s)
	nf := float64(n)
	for i, x := range s {
		f := cdf(x)
		// Distance against both step edges of the empirical CDF.
		upper := float64(i+1)/nf - f
		lower := f - float64(i)/nf
		if upper > d {
			d = upper
		}
		if lower > d {
			d = lower
		}
	}
	lambda := (math.Sqrt(nf) + 0.12 + 0.11/math.Sqrt(nf)) * d
	return d, kolmogorovQ(lambda)
}

// kolmogorovQ returns Q(λ) = 2·Σ_{k≥1} (−1)^(k−1)·exp(−2k²λ²), the
// asymptotic survival function of the Kolmogorov distribution.
func kolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	if lambda < 0.2 {
		return 1 // series converges to 1 from below; avoid cancellation
	}
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	return Clamp(q, 0, 1)
}
