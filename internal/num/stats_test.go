package num

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEqual(got, 5, 1e-12) {
		t.Errorf("mean = %g, want 5", got)
	}
	// Sample variance with n−1: Σ(x−5)² = 32, /7.
	if got := Variance(xs); !almostEqual(got, 32.0/7, 1e-12) {
		t.Errorf("variance = %g, want %g", got, 32.0/7)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("stddev = %g", got)
	}
}

func TestMeanEmptyAndSingle(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("mean of empty should be NaN")
	}
	if got := Mean([]float64{3}); got != 3 {
		t.Errorf("mean of single = %g", got)
	}
	if !math.IsNaN(Variance([]float64{3})) {
		t.Error("variance of single should be NaN")
	}
}

func TestMSE(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 3}
	if got := MSE(a, b); got != 0 {
		t.Errorf("identical MSE = %g", got)
	}
	c := []float64{2, 2, 5}
	// ((1)² + 0 + (2)²)/3 = 5/3.
	if got := MSE(a, c); !almostEqual(got, 5.0/3, 1e-12) {
		t.Errorf("MSE = %g, want %g", got, 5.0/3)
	}
	if !math.IsNaN(MSE(a, []float64{1})) {
		t.Error("length mismatch should be NaN")
	}
	if !math.IsNaN(MSE(nil, nil)) {
		t.Error("empty should be NaN")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 2x + 1
	if got := Pearson(x, y); !almostEqual(got, 1, 1e-12) {
		t.Errorf("perfect correlation = %g", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, neg); !almostEqual(got, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %g", got)
	}
}

func TestPearsonUndefined(t *testing.T) {
	if !math.IsNaN(Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Error("zero-variance Pearson should be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1}, []float64{2})) {
		t.Error("n=1 Pearson should be NaN")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept := LinearFit(x, y)
	if !almostEqual(slope, 2, 1e-12) || !almostEqual(intercept, 1, 1e-12) {
		t.Errorf("fit = (%g, %g), want (2, 1)", slope, intercept)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	s, i := LinearFit([]float64{1, 1}, []float64{2, 3})
	if !math.IsNaN(s) || !math.IsNaN(i) {
		t.Error("vertical data should give NaN fit")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %g, want 1", got)
	}
	if got := Quantile(xs, 1); got != 9 {
		t.Errorf("q1 = %g, want 9", got)
	}
	// Median of sorted [1 1 2 3 4 5 6 9] = (3+4)/2.
	if got := Quantile(xs, 0.5); !almostEqual(got, 3.5, 1e-12) {
		t.Errorf("median = %g, want 3.5", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("clamp failed")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(50, 100)
	if !(lo < 0.5 && 0.5 < hi) {
		t.Errorf("Wilson [%g, %g] should contain 0.5", lo, hi)
	}
	// Known value for 50/100: approximately [0.404, 0.596].
	if !almostEqual(lo, 0.40383, 1e-3) || !almostEqual(hi, 0.59617, 1e-3) {
		t.Errorf("Wilson 50/100 = [%g, %g]", lo, hi)
	}
	// Extreme proportions stay inside [0, 1] and don't collapse.
	lo, hi = WilsonInterval(0, 100)
	if lo != 0 || hi <= 0 || hi > 0.1 {
		t.Errorf("Wilson 0/100 = [%g, %g]", lo, hi)
	}
	lo, hi = WilsonInterval(100, 100)
	if hi != 1 || lo >= 1 || lo < 0.9 {
		t.Errorf("Wilson 100/100 = [%g, %g]", lo, hi)
	}
	lo, hi = WilsonInterval(0, 0)
	if lo != 0 || hi != 1 {
		t.Errorf("Wilson with n=0 = [%g, %g], want [0, 1]", lo, hi)
	}
}

func TestWilsonIntervalShrinksWithN(t *testing.T) {
	lo1, hi1 := WilsonInterval(50, 100)
	lo2, hi2 := WilsonInterval(5000, 10000)
	if hi2-lo2 >= hi1-lo1 {
		t.Errorf("interval did not shrink: %g vs %g", hi2-lo2, hi1-lo1)
	}
}

func TestMeanLinearityProperty(t *testing.T) {
	f := func(xs []float64, a float64) bool {
		if len(xs) == 0 {
			return true
		}
		a = math.Mod(a, 100)
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + a
		}
		return almostEqual(Mean(shifted), Mean(xs)+a, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPearsonScaleInvarianceProperty(t *testing.T) {
	x := []float64{1, 4, 2, 8, 5, 7}
	y := []float64{2, 3, 1, 9, 4, 6}
	base := Pearson(x, y)
	f := func(scale, shift float64) bool {
		scale = math.Mod(scale, 50)
		if math.Abs(scale) < 1e-9 {
			return true
		}
		shift = math.Mod(shift, 50)
		y2 := make([]float64, len(y))
		for i := range y {
			y2[i] = scale*y[i] + shift
		}
		got := Pearson(x, y2)
		want := base
		if scale < 0 {
			want = -base
		}
		return almostEqual(got, want, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
