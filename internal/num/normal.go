// Package num is the numerical substrate for the YAP yield models: normal
// distribution functions, one-dimensional quadrature, root finding, summary
// statistics and histograms. It has no dependencies beyond the standard
// library and is deliberately free of any yield-model semantics so that the
// model packages stay readable.
package num

import (
	"errors"
	"math"
)

// invSqrt2 is 1/√2, used to map the normal CDF onto math.Erf.
const invSqrt2 = 0.7071067811865476

// NormalCDF returns P(X ≤ x) for X ~ N(mu, sigma²).
//
// sigma must be positive; a zero sigma degenerates to a step function, which
// is what callers with perfectly-controlled processes expect, so it is
// handled explicitly instead of producing NaN.
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x < mu {
			return 0
		}
		return 1
	}
	return 0.5 * (1 + math.Erf((x-mu)/sigma*invSqrt2))
}

// StdNormalCDF returns P(Z ≤ z) for Z ~ N(0,1).
func StdNormalCDF(z float64) float64 { return 0.5 * (1 + math.Erf(z*invSqrt2)) }

// NormalInterval returns P(lo ≤ X ≤ hi) for X ~ N(mu, sigma²).
//
// This is the primitive behind the pad possibility-of-survival integrals
// (Eq. 1, 7, 13, 23 of the paper). For far-tail intervals the direct
// difference of CDFs loses all precision (1−1 = 0), so the computation is
// reflected into the lower tail where Erfc keeps relative accuracy.
func NormalInterval(lo, hi, mu, sigma float64) float64 {
	if hi <= lo {
		return 0
	}
	if sigma <= 0 {
		if lo <= mu && mu <= hi {
			return 1
		}
		return 0
	}
	a := (lo - mu) / sigma
	b := (hi - mu) / sigma
	// Work on the side of the mean where the tail is representable.
	if a > 0 {
		// Both bounds above the mean: P = Q(a) − Q(b) with the upper-tail
		// function Q(z) = erfc(z/√2)/2.
		return 0.5 * (math.Erfc(a*invSqrt2) - math.Erfc(b*invSqrt2))
	}
	if b < 0 {
		// Both below the mean: mirror.
		return 0.5 * (math.Erfc(-b*invSqrt2) - math.Erfc(-a*invSqrt2))
	}
	// Straddles the mean: each CDF is well-conditioned.
	return 0.5 * (math.Erf(b*invSqrt2) - math.Erf(a*invSqrt2))
}

// StdNormalQuantile returns z such that P(Z ≤ z) = p for Z ~ N(0,1).
//
// Implementation: Peter Acklam's rational approximation refined by one
// Halley step against math.Erf, giving near machine precision over
// p ∈ (0,1). Returns ±Inf at the endpoints and NaN outside [0,1].
func StdNormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}
	// Acklam coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}

	const pLow = 0.02425
	var z float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		z = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		z = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		z = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := StdNormalCDF(z) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(z*z/2)
	z -= u / (1 + z*u/2)
	return z
}

// ErrNoBracket is returned by root finders when the supplied interval does
// not bracket a sign change.
var ErrNoBracket = errors.New("num: interval does not bracket a root")

// ErrNoConverge is returned when an iterative routine exhausts its iteration
// budget without meeting its tolerance.
var ErrNoConverge = errors.New("num: iteration did not converge")
