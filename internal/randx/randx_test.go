package randx

import (
	"errors"
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("equal seeds diverged")
		}
	}
	c := NewSource(43)
	same := 0
	d := NewSource(42)
	for i := 0; i < 100; i++ {
		if c.Float64() == d.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("nearby seeds produced %d identical draws out of 100", same)
	}
}

func TestDeriveIndependentOfOrder(t *testing.T) {
	// Derive(seed, i) must not depend on any other stream's consumption.
	first := Derive(7, 3).Float64()
	s := Derive(7, 1)
	for i := 0; i < 50; i++ {
		s.Float64()
	}
	second := Derive(7, 3).Float64()
	if first != second {
		t.Error("Derive stream changed after consuming a sibling stream")
	}
}

func TestDeriveDistinctStreams(t *testing.T) {
	a := Derive(7, 0)
	b := Derive(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("derived streams overlap: %d identical draws", same)
	}
}

func TestSplitDecorrelates(t *testing.T) {
	root := NewSource(1)
	a := root.Split()
	b := root.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams overlap: %d identical draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	s := NewSource(5)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(-2, 3)
		if v < -2 || v >= 3 {
			t.Fatalf("uniform out of range: %g", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := NewSource(11)
	const n = 200000
	mu, sigma := 3.0, 2.0
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.Normal(mu, sigma)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-mu) > 0.02 {
		t.Errorf("normal mean = %g, want %g", mean, mu)
	}
	if math.Abs(variance-sigma*sigma) > 0.1 {
		t.Errorf("normal variance = %g, want %g", variance, sigma*sigma)
	}
}

func TestPositiveNormal(t *testing.T) {
	s := NewSource(13)
	for i := 0; i < 10000; i++ {
		v, err := s.PositiveNormal(1, 5)
		if err != nil {
			t.Fatalf("PositiveNormal: %v", err)
		}
		if v <= 0 {
			t.Fatalf("PositiveNormal returned %g", v)
		}
	}
}

func TestPositiveNormalErrorsOnNonPositiveMean(t *testing.T) {
	for _, mu := range []float64{0, -1} {
		_, err := NewSource(1).PositiveNormal(mu, 1)
		if err == nil {
			t.Fatalf("PositiveNormal(%g, 1): expected error", mu)
		}
		if !errors.Is(err, ErrNonPositiveMean) {
			t.Errorf("errors.Is(err, ErrNonPositiveMean) = false for %v", err)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	s := NewSource(17)
	for _, lambda := range []float64{0.3, 3, 29, 70, 500} {
		const n = 50000
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			v := float64(s.Poisson(lambda))
			sum += v
			sum2 += v * v
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		// Poisson mean = variance = λ; allow 5σ sampling slack.
		slack := 5 * math.Sqrt(lambda/n)
		if math.Abs(mean-lambda) > slack+0.01 {
			t.Errorf("Poisson(%g) mean = %g", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.1*lambda+0.1 {
			t.Errorf("Poisson(%g) variance = %g", lambda, variance)
		}
	}
}

func TestPoissonZeroAndNegativeLambda(t *testing.T) {
	s := NewSource(19)
	if s.Poisson(0) != 0 || s.Poisson(-3) != 0 {
		t.Error("non-positive lambda should give 0")
	}
}

func TestParticleThicknessDistribution(t *testing.T) {
	s := NewSource(23)
	t0, z := 1e-6, 3.0
	const n = 100000
	var minV = math.Inf(1)
	countAbove2 := 0
	var sumSqrt float64
	for i := 0; i < n; i++ {
		v := s.ParticleThickness(t0, z)
		if v < minV {
			minV = v
		}
		if v > 2*t0 {
			countAbove2++
		}
		sumSqrt += math.Sqrt(v)
	}
	if minV < t0 {
		t.Errorf("thickness below t0: %g", minV)
	}
	// P(t > 2t0) = (1/2)^(z−1) = 0.25 for z = 3.
	p := float64(countAbove2) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Errorf("P(t > 2t0) = %g, want 0.25", p)
	}
	// E[√t] = (z−1)/(z−3/2)·√t0 = (4/3)√t0 for z = 3.
	meanSqrt := sumSqrt / n
	want := 4.0 / 3 * math.Sqrt(t0)
	if math.Abs(meanSqrt-want) > 0.01*want {
		t.Errorf("E[sqrt(t)] = %g, want %g", meanSqrt, want)
	}
}

func TestParticleThicknessPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for z <= 1")
		}
	}()
	NewSource(1).ParticleThickness(1e-6, 1)
}

func TestInDiskUniformity(t *testing.T) {
	s := NewSource(29)
	const n = 100000
	radius := 2.0
	var sumR, sumR2 float64
	inside := 0
	quadrant := 0
	for i := 0; i < n; i++ {
		x, y := s.InDisk(radius)
		r := math.Hypot(x, y)
		if r <= radius {
			inside++
		}
		if x > 0 && y > 0 {
			quadrant++
		}
		sumR += r
		sumR2 += r * r
	}
	if inside != n {
		t.Errorf("%d points outside the disk", n-inside)
	}
	// Uniform disk: E[r] = 2R/3, E[r²] = R²/2, P(quadrant) = 1/4.
	if got := sumR / n; math.Abs(got-2*radius/3) > 0.01 {
		t.Errorf("E[r] = %g, want %g", got, 2*radius/3)
	}
	if got := sumR2 / n; math.Abs(got-radius*radius/2) > 0.02 {
		t.Errorf("E[r²] = %g, want %g", got, radius*radius/2)
	}
	if p := float64(quadrant) / n; math.Abs(p-0.25) > 0.01 {
		t.Errorf("quadrant probability = %g, want 0.25", p)
	}
}

func TestInRect(t *testing.T) {
	s := NewSource(31)
	for i := 0; i < 1000; i++ {
		x, y := s.InRect(-1, 2, 3, 5)
		if x < -1 || x >= 3 || y < 2 || y >= 5 {
			t.Fatalf("InRect out of bounds: (%g, %g)", x, y)
		}
	}
}

func TestAngleRange(t *testing.T) {
	s := NewSource(37)
	for i := 0; i < 1000; i++ {
		a := s.Angle()
		if a < 0 || a >= 2*math.Pi {
			t.Fatalf("angle out of range: %g", a)
		}
	}
}

func TestBernoulliProbability(t *testing.T) {
	s := NewSource(41)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %g", p)
	}
	if s.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	alwaysTrue := true
	for i := 0; i < 100; i++ {
		alwaysTrue = alwaysTrue && s.Bernoulli(1)
	}
	if !alwaysTrue {
		t.Error("Bernoulli(1) returned false")
	}
}

func TestIntN(t *testing.T) {
	s := NewSource(43)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.IntN(5)
		if v < 0 || v >= 5 {
			t.Fatalf("IntN out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("IntN(5) covered only %d values", len(seen))
	}
}
