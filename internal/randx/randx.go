// Package randx provides the seeded random distributions used by the YAP
// Monte-Carlo simulator: normal variates, Poisson counts, the truncated
// power-law particle-thickness law of Glang (Eq. 17 of the paper) and
// uniform sampling over disks and rectangles.
//
// Every distribution draws from an explicit *Source so that simulations are
// reproducible from a seed and can run one independent stream per worker.
package randx

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
)

// Source is a seeded random stream. It wraps math/rand/v2's PCG generator.
type Source struct {
	rng *rand.Rand
}

// NewSource returns a Source seeded deterministically from seed.
func NewSource(seed uint64) *Source {
	// Mix the single word into two PCG seed words with splitmix64 so that
	// nearby seeds give unrelated streams.
	s1 := splitmix64(seed)
	s2 := splitmix64(s1)
	return &Source{rng: rand.New(rand.NewPCG(s1, s2))}
}

// Split returns a new independent Source derived from s. Streams produced
// by successive Split calls are decorrelated, which lets a simulation fan
// out one stream per wafer or per worker while staying reproducible.
func (s *Source) Split() *Source {
	return NewSource(s.rng.Uint64())
}

// Derive returns a Source for stream `index` of the family rooted at seed.
// Unlike Split, it does not consume state from any other Source, so workers
// processing items in any order (or in parallel) still draw identical
// streams for identical (seed, index) pairs — the property that makes the
// simulator's results independent of its worker count.
func Derive(seed, index uint64) *Source {
	return NewSource(splitmix64(seed) ^ splitmix64(0x9e3779b97f4a7c15+index))
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform variate in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Uniform returns a uniform variate in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Normal returns a variate from N(mu, sigma²).
func (s *Source) Normal(mu, sigma float64) float64 {
	return mu + sigma*s.rng.NormFloat64()
}

// ErrNonPositiveMean reports a PositiveNormal draw requested around a
// non-positive mean. Callers match it with errors.Is.
var ErrNonPositiveMean = errors.New("randx: PositiveNormal requires a positive mean")

// PositiveNormal returns a variate from N(mu, sigma²) conditioned on being
// strictly positive, by resampling. It is used to draw inherently-positive
// process parameters (standard deviations, warpage) for validation
// parameter sets. A non-positive mu — typically an unvalidated spread
// configuration — returns ErrNonPositiveMean rather than crashing the
// caller.
func (s *Source) PositiveNormal(mu, sigma float64) (float64, error) {
	if mu <= 0 {
		return 0, fmt.Errorf("%w: got mu=%g", ErrNonPositiveMean, mu)
	}
	for i := 0; i < 1000; i++ {
		if v := s.Normal(mu, sigma); v > 0 {
			return v, nil
		}
	}
	// Pathological sigma/mu ratio: fall back to the mean rather than spin.
	return mu, nil
}

// Poisson returns a Poisson(lambda) count. For small lambda it uses Knuth's
// product method; for large lambda the PTRS transformed-rejection sampler
// of Hörmann, which is O(1) regardless of lambda.
func (s *Source) Poisson(lambda float64) int {
	switch {
	case lambda <= 0:
		return 0
	case lambda < 30:
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= s.rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		return s.poissonPTRS(lambda)
	}
}

// poissonPTRS implements Hörmann's PTRS algorithm for lambda ≥ 10.
func (s *Source) poissonPTRS(lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLambda := math.Log(lambda)
	for {
		u := s.rng.Float64() - 0.5
		v := s.rng.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logLambda-lambda-lg {
			return int(k)
		}
	}
}

// ParticleThickness draws a particle thickness from the normalized Glang
// size law f(t) = (z−1)·t0^(z−1) / t^z for t > t0 (Eq. 17 with the density
// prefactor D_t removed), via inverse-transform sampling:
//
//	t = t0 · (1−U)^(−1/(z−1))
//
// z must exceed 1 for the law to be normalizable; the paper uses z ∈ [2,3].
func (s *Source) ParticleThickness(t0, z float64) float64 {
	if z <= 1 {
		// Unreachable from the simulator: every entry path validates the
		// shape factor first (core.Params.Validate requires z > 1.5,
		// tcb/defect Validate require z > 1). The guard documents the
		// law's domain for direct library users; erroring here would put a
		// branch on every draw of the hot sampling loop.
		panic("randx: particle size law requires z > 1") //yaplint:allow no-naked-panic validated upstream; hot path
	}
	u := s.rng.Float64()
	return t0 * math.Pow(1-u, -1/(z-1))
}

// InDisk returns a point uniformly distributed over the disk of the given
// radius centered at the origin.
func (s *Source) InDisk(radius float64) (x, y float64) {
	// Inverse-transform the radius: r = R√U gives uniform areal density.
	r := radius * math.Sqrt(s.rng.Float64())
	theta := 2 * math.Pi * s.rng.Float64()
	return r * math.Cos(theta), r * math.Sin(theta)
}

// RadiusClustered draws a radius in [0, R) from the radially clustered
// areal density D(r) ∝ 1 + kc·(r/R)², the edge-weighted particle profile
// of Singh's radial defect clustering (kc = 0 recovers the uniform disk).
// Inverse transform: with u = (r/R)², the CDF is
// (u + kc·u²/2)/(1 + kc/2), inverted in closed form.
func (s *Source) RadiusClustered(radius, kc float64) float64 {
	if kc <= 0 {
		return radius * math.Sqrt(s.rng.Float64())
	}
	c := s.rng.Float64() * (1 + kc/2)
	// Solve u + kc·u²/2 = c for u ≥ 0.
	u := (-1 + math.Sqrt(1+2*kc*c)) / kc
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return radius * math.Sqrt(u)
}

// InDiskClustered returns a point in the disk with the radially clustered
// density of RadiusClustered and uniform angle.
func (s *Source) InDiskClustered(radius, kc float64) (x, y float64) {
	r := s.RadiusClustered(radius, kc)
	theta := 2 * math.Pi * s.rng.Float64()
	return r * math.Cos(theta), r * math.Sin(theta)
}

// InRect returns a point uniformly distributed over the axis-aligned
// rectangle [x0,x1) × [y0,y1).
func (s *Source) InRect(x0, y0, x1, y1 float64) (x, y float64) {
	return s.Uniform(x0, x1), s.Uniform(y0, y1)
}

// Angle returns a uniform angle in [0, 2π).
func (s *Source) Angle() float64 { return 2 * math.Pi * s.rng.Float64() }

// IntN returns a uniform integer in [0, n).
func (s *Source) IntN(n int) int { return s.rng.IntN(n) }

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool { return s.rng.Float64() < p }
