// Package repair models interconnect redundancy for hybrid bonding — the
// yield-improvement technique the paper names as future work (§V:
// "developing fault tolerance and yield improvement techniques leveraging
// YAP") and motivates through the IEEE P3405 chiplet interconnect test and
// repair standard [6].
//
// The repair architecture is the standard mux-based spare-lane scheme: the
// die's N Cu connections are organized into groups of g signal lanes
// sharing r spare lanes; after bond-out test, a group remaps its failed
// lanes onto spares, so a group survives up to r lane failures and the die
// survives iff every group does.
//
// Redundancy rescues the mechanisms that fail individual pads
// independently — Cu recess variations and (in this model's convention)
// the random component of overlay — but not area defects: a void spans
// hundreds of micrometers and takes out entire groups regardless of
// spares, so Y_df is unaffected. That asymmetry is exactly why repair is
// most valuable at fine pitch, where recess loss dominates (§IV-B).
package repair

import (
	"fmt"
	"math"

	"yap/internal/core"
)

// Scheme describes a spare-lane repair architecture.
type Scheme struct {
	// GroupSize is g: the number of signal lanes per repair group.
	GroupSize int
	// Spares is r: the spare lanes available to each group.
	Spares int
}

// None returns the no-repair scheme (every lane must work).
func None() Scheme { return Scheme{GroupSize: 1, Spares: 0} }

// Validate reports whether the scheme is well-formed.
func (s Scheme) Validate() error {
	if s.GroupSize < 1 {
		return fmt.Errorf("repair: group size %d < 1", s.GroupSize)
	}
	if s.Spares < 0 {
		return fmt.Errorf("repair: negative spares %d", s.Spares)
	}
	return nil
}

// Overhead returns the fractional pad-count overhead of the scheme,
// r / g — the silicon price of the redundancy.
func (s Scheme) Overhead() float64 {
	return float64(s.Spares) / float64(s.GroupSize)
}

// GroupFailure returns the probability a group of g+r lanes cannot
// deliver g working lanes when each lane independently fails with
// probability pf: P(failures > r) over Binomial(g+r, pf).
//
// The failure tail is summed directly in log-space pmf terms. Summing the
// tail (rather than 1 − survival) keeps probabilities down to ~1e-300
// exact — essential because die yields raise the group term to the 10⁶th
// power, where 1e-16 of rounding in a near-one survival would masquerade
// as real yield loss.
func (s Scheme) GroupFailure(pf float64) float64 {
	if pf <= 0 {
		return 0
	}
	if pf >= 1 {
		return 1
	}
	n := s.GroupSize + s.Spares
	logPf := math.Log(pf)
	log1mPf := math.Log1p(-pf)
	// log C(n, k) built incrementally from k = 0.
	logC := 0.0
	var sum float64
	for k := 0; k <= n; k++ {
		if k > 0 {
			logC += math.Log(float64(n-k+1)) - math.Log(float64(k))
		}
		if k > s.Spares {
			sum += math.Exp(logC + float64(k)*logPf + float64(n-k)*log1mPf)
		}
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// GroupSurvival returns 1 − GroupFailure: the probability a group delivers
// its g signal lanes.
func (s Scheme) GroupSurvival(pf float64) float64 {
	return 1 - s.GroupFailure(pf)
}

// DieSurvival returns the probability all groups of a die with nSignal
// signal lanes survive. Partial trailing groups are treated as one more
// full group (pessimistic by at most one group). Evaluated through the
// failure tail and log1p so deep-tail group failures survive the
// million-group product.
func (s Scheme) DieSurvival(nSignal int, pf float64) float64 {
	if nSignal <= 0 {
		return 1
	}
	groups := (nSignal + s.GroupSize - 1) / s.GroupSize
	fail := s.GroupFailure(pf)
	if fail >= 1 {
		return 0
	}
	return math.Exp(float64(groups) * math.Log1p(-fail))
}

// Result is a repaired-yield evaluation.
type Result struct {
	// Scheme echoes the architecture evaluated.
	Scheme Scheme
	// PadFailProb is the per-lane failure probability from the Cu recess
	// model.
	PadFailProb float64
	// Unrepaired and Repaired are the recess die-yield terms without and
	// with the scheme.
	Unrepaired, Repaired float64
	// TotalUnrepaired and TotalRepaired are the full bonding yields.
	TotalUnrepaired, TotalRepaired float64
	// PhysicalPads is the pad count including spare overhead; it must
	// still fit the die at the process pitch for the scheme to be
	// realizable.
	PhysicalPads int
	// Realizable reports whether the die has room for the spares at the
	// given pitch.
	Realizable bool
}

// EvaluateW2W returns the W2W bonding yield with the repair scheme applied
// to the Cu recess mechanism. The die's pad budget at the process pitch is
// split into signal and spare lanes: nSignal = N·g/(g+r); spares consume
// real pads, so repair trades connectivity for yield rather than assuming
// free silicon.
func EvaluateW2W(p core.Params, s Scheme) (Result, error) {
	return evaluate(p, s, func() (core.Breakdown, error) { return p.EvaluateW2W() })
}

// EvaluateD2W is EvaluateW2W for die-to-wafer bonding.
func EvaluateD2W(p core.Params, s Scheme) (Result, error) {
	return evaluate(p, s, func() (core.Breakdown, error) { return p.EvaluateD2W() })
}

func evaluate(p core.Params, s Scheme, eval func() (core.Breakdown, error)) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	base, err := eval()
	if err != nil {
		return Result{}, err
	}
	total := p.PadArray().Pads()
	// The physical array is fixed by die size and pitch; the scheme
	// partitions it into signal lanes and spares.
	lanesPerGroup := s.GroupSize + s.Spares
	groups := total / lanesPerGroup
	pf := p.RecessParams().PadFailProb()

	r := Result{
		Scheme:          s,
		PadFailProb:     pf,
		Unrepaired:      base.Recess,
		TotalUnrepaired: base.Total,
		PhysicalPads:    total,
		Realizable:      groups >= 1,
	}
	if !r.Realizable {
		return r, fmt.Errorf("repair: %d pads cannot host a %d-lane group", total, lanesPerGroup)
	}
	// Repaired recess yield over the group structure, via the failure tail
	// so deep-tail group failures survive the million-group product.
	fail := s.GroupFailure(pf)
	repairedRecess := 0.0
	if fail < 1 {
		repairedRecess = math.Exp(float64(groups) * math.Log1p(-fail))
	}
	r.Repaired = repairedRecess
	r.TotalRepaired = base.Overlay * repairedRecess * base.Defect
	return r, nil
}

// RequiredSpares returns the smallest spare count r (searching 0..maxR)
// for which the repaired recess yield meets the target, at group size g.
// Returns an error if even maxR spares cannot reach it.
func RequiredSpares(p core.Params, groupSize, maxR int, target float64) (int, error) {
	if groupSize < 1 {
		return 0, fmt.Errorf("repair: group size %d < 1", groupSize)
	}
	for r := 0; r <= maxR; r++ {
		res, err := EvaluateW2W(p, Scheme{GroupSize: groupSize, Spares: r})
		if err != nil {
			return 0, err
		}
		if res.Repaired >= target {
			return r, nil
		}
	}
	return 0, fmt.Errorf("repair: target %g unreachable with ≤%d spares per %d lanes",
		target, maxR, groupSize)
}
