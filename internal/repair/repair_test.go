package repair

import (
	"math"
	"testing"
	"testing/quick"

	"yap/internal/core"
	"yap/internal/units"
)

// finePitch returns the recess-limited regime where repair matters: 1 µm
// pitch, clean particles so the defect term doesn't mask the effect.
func finePitch() core.Params {
	return core.Baseline().
		WithPitch(1 * units.Micrometer).
		WithDefectDensity(0.01 * units.PerSquareCentimeter)
}

func TestSchemeValidate(t *testing.T) {
	if err := (Scheme{GroupSize: 32, Spares: 2}).Validate(); err != nil {
		t.Errorf("valid scheme rejected: %v", err)
	}
	if err := (Scheme{GroupSize: 0, Spares: 1}).Validate(); err == nil {
		t.Error("zero group accepted")
	}
	if err := (Scheme{GroupSize: 8, Spares: -1}).Validate(); err == nil {
		t.Error("negative spares accepted")
	}
}

func TestNoneSchemeIsIdentity(t *testing.T) {
	p := finePitch()
	res, err := EvaluateW2W(p, None())
	if err != nil {
		t.Fatal(err)
	}
	// g=1, r=0 uses every physical pad as signal with no repair: the
	// repaired recess yield equals the model's.
	if math.Abs(res.Repaired-res.Unrepaired) > 1e-9 {
		t.Errorf("identity scheme changed yield: %g vs %g", res.Repaired, res.Unrepaired)
	}
	if res.Scheme.Overhead() != 0 {
		t.Errorf("identity overhead = %g", res.Scheme.Overhead())
	}
}

func TestGroupSurvivalKnownValues(t *testing.T) {
	s := Scheme{GroupSize: 2, Spares: 1} // n = 3 lanes, survives ≤1 failure
	pf := 0.1
	// P(X ≤ 1), X~Binom(3, 0.1) = 0.729 + 3·0.081 = 0.972.
	if got := s.GroupSurvival(pf); math.Abs(got-0.972) > 1e-12 {
		t.Errorf("group survival = %g, want 0.972", got)
	}
	// Degenerate pf.
	if s.GroupSurvival(0) != 1 || s.GroupSurvival(1) != 0 {
		t.Error("degenerate pf handling wrong")
	}
}

func TestGroupSurvivalDeepTail(t *testing.T) {
	// pf ~ 1e-12 with one spare: failure needs two hits,
	// P(fail) ≈ C(n,2)·pf² — far below 1e-16; survival must not collapse
	// to exactly 1 in a way that loses the die-level product. We check the
	// complementary route: die survival with 1e8 lanes stays below 1 but
	// above the unrepaired value.
	p := finePitch()
	res, err := EvaluateW2W(p, Scheme{GroupSize: 64, Spares: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Repaired <= res.Unrepaired {
		t.Errorf("one spare per 64 lanes should improve recess yield: %g vs %g",
			res.Repaired, res.Unrepaired)
	}
	if res.Repaired > 1 {
		t.Errorf("repaired yield %g > 1", res.Repaired)
	}
}

func TestRepairRescuesFinePitchRecess(t *testing.T) {
	// The headline: at 1 µm pitch the recess term costs ~18 points; one
	// spare per 64 lanes recovers nearly all of it for 1.6% pad overhead.
	p := finePitch()
	res, err := EvaluateW2W(p, Scheme{GroupSize: 64, Spares: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unrepaired > 0.9 {
		t.Fatalf("regime check: unrepaired recess yield %g should be <0.9", res.Unrepaired)
	}
	if res.Repaired < 0.99 {
		t.Errorf("repaired recess yield = %g, want ≥0.99", res.Repaired)
	}
	if res.TotalRepaired <= res.TotalUnrepaired {
		t.Error("total yield did not improve")
	}
	if got := res.Scheme.Overhead(); math.Abs(got-1.0/64) > 1e-12 {
		t.Errorf("overhead = %g", got)
	}
}

func TestRepairDoesNotTouchDefectOrOverlay(t *testing.T) {
	p := finePitch()
	base, err := p.EvaluateW2W()
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvaluateW2W(p, Scheme{GroupSize: 32, Spares: 2})
	if err != nil {
		t.Fatal(err)
	}
	// TotalRepaired = overlay · repairedRecess · defect exactly.
	want := base.Overlay * res.Repaired * base.Defect
	if math.Abs(res.TotalRepaired-want) > 1e-12 {
		t.Errorf("repaired total = %g, want %g", res.TotalRepaired, want)
	}
}

func TestEvaluateD2W(t *testing.T) {
	p := finePitch()
	res, err := EvaluateD2W(p, Scheme{GroupSize: 64, Spares: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Repaired <= res.Unrepaired {
		t.Error("D2W repair did not improve recess yield")
	}
	// D2W overlay loss is untouched by lane repair (die-level mechanism).
	d2w, err := p.EvaluateD2W()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRepaired > d2w.Overlay*1.0*d2w.Defect+1e-12 {
		t.Errorf("repaired total %g exceeds overlay*defect bound", res.TotalRepaired)
	}
}

func TestMoreSparesNeverHurt(t *testing.T) {
	p := finePitch()
	prev := -1.0
	for r := 0; r <= 3; r++ {
		res, err := EvaluateW2W(p, Scheme{GroupSize: 64, Spares: r})
		if err != nil {
			t.Fatal(err)
		}
		if res.Repaired < prev-1e-12 {
			t.Errorf("recess yield fell when adding spare %d: %g < %g", r, res.Repaired, prev)
		}
		prev = res.Repaired
	}
}

func TestGroupSurvivalMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		pf1 := math.Abs(math.Mod(a, 1))
		pf2 := math.Abs(math.Mod(b, 1))
		if pf1 > pf2 {
			pf1, pf2 = pf2, pf1
		}
		s := Scheme{GroupSize: 16, Spares: 2}
		// Higher lane failure probability never raises group survival.
		return s.GroupSurvival(pf2) <= s.GroupSurvival(pf1)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRequiredSpares(t *testing.T) {
	p := finePitch()
	r, err := RequiredSpares(p, 64, 4, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Errorf("required spares = %d, want 1", r)
	}
	// Already-met target needs zero spares.
	r, err = RequiredSpares(core.Baseline(), 64, 4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("baseline required spares = %d, want 0", r)
	}
	// Impossible target errors out.
	if _, err := RequiredSpares(p, 64, 0, 0.9999); err == nil {
		t.Error("unreachable target accepted")
	}
	if _, err := RequiredSpares(p, 0, 4, 0.9); err == nil {
		t.Error("zero group size accepted")
	}
}

func TestEvaluateRejectsBadInput(t *testing.T) {
	p := finePitch()
	if _, err := EvaluateW2W(p, Scheme{GroupSize: -1}); err == nil {
		t.Error("bad scheme accepted")
	}
	bad := p
	bad.DefectShape = 1
	if _, err := EvaluateW2W(bad, None()); err == nil {
		t.Error("bad params accepted")
	}
	// A group larger than the die's pad budget is unrealizable. Keep the
	// wafer proportional to the die so the floorplan stays enumerable.
	tiny := core.Baseline()
	tiny.DieWidth, tiny.DieHeight = 20*units.Micrometer, 20*units.Micrometer
	tiny.WaferDiameter = 2 * units.Millimeter
	if _, err := EvaluateW2W(tiny, Scheme{GroupSize: 100, Spares: 10}); err == nil {
		t.Error("unrealizable scheme accepted")
	}
}

func TestDieSurvivalEdgeCases(t *testing.T) {
	s := Scheme{GroupSize: 8, Spares: 1}
	if s.DieSurvival(0, 0.5) != 1 {
		t.Error("zero lanes should survive trivially")
	}
	if got := s.DieSurvival(100, 1); got != 0 {
		t.Errorf("pf=1 survival = %g", got)
	}
}
