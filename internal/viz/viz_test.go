package viz

import (
	"image/color"
	"image/png"
	"math"
	"os"
	"path/filepath"
	"testing"

	"yap/internal/core"
	"yap/internal/num"
	"yap/internal/sim"
)

func TestCanvasBasics(t *testing.T) {
	c := NewCanvas(100, 50)
	if c.W() != 100 || c.H() != 50 {
		t.Fatalf("canvas dims %dx%d", c.W(), c.H())
	}
	// Background is white.
	if got := c.Img.RGBAAt(10, 10); got != White {
		t.Errorf("background = %v", got)
	}
	c.Set(5, 5, Black)
	if got := c.Img.RGBAAt(5, 5); got != Black {
		t.Errorf("set pixel = %v", got)
	}
	// Out-of-bounds writes are ignored, not panics.
	c.Set(-1, -1, Black)
	c.Set(1000, 1000, Black)
}

func TestLineEndpoints(t *testing.T) {
	c := NewCanvas(50, 50)
	c.Line(5, 5, 40, 30, Red)
	if c.Img.RGBAAt(5, 5) != Red || c.Img.RGBAAt(40, 30) != Red {
		t.Error("line endpoints not drawn")
	}
	// Degenerate (single-point) line.
	c.Line(10, 10, 10, 10, Blue)
	if c.Img.RGBAAt(10, 10) != Blue {
		t.Error("degenerate line not drawn")
	}
	// Vertical and horizontal lines.
	c.Line(20, 5, 20, 45, Green)
	for y := 5; y <= 45; y++ {
		if c.Img.RGBAAt(20, y) != Green {
			t.Fatalf("vertical line gap at y=%d", y)
		}
	}
}

func TestFillAndStrokeRect(t *testing.T) {
	c := NewCanvas(30, 30)
	c.FillRect(5, 5, 10, 8, Blue)
	if c.Img.RGBAAt(5, 5) != Blue || c.Img.RGBAAt(14, 12) != Blue {
		t.Error("fill rect corners missing")
	}
	if c.Img.RGBAAt(15, 5) == Blue {
		t.Error("fill rect overshoots width")
	}
	c.StrokeRect(20, 20, 5, 5, Red)
	if c.Img.RGBAAt(20, 20) != Red || c.Img.RGBAAt(24, 24) != Red {
		t.Error("stroke rect corners missing")
	}
	if c.Img.RGBAAt(22, 22) == Red {
		t.Error("stroke rect filled interior")
	}
}

func TestDiskAndCircle(t *testing.T) {
	c := NewCanvas(40, 40)
	c.Disk(20, 20, 5, Purple)
	if c.Img.RGBAAt(20, 20) != Purple || c.Img.RGBAAt(24, 20) != Purple {
		t.Error("disk missing pixels")
	}
	if c.Img.RGBAAt(27, 20) == Purple {
		t.Error("disk overshoots radius")
	}
	c2 := NewCanvas(40, 40)
	c2.Circle(20, 20, 10, Black)
	if c2.Img.RGBAAt(30, 20) != Black || c2.Img.RGBAAt(20, 10) != Black {
		t.Error("circle cardinal points missing")
	}
	if c2.Img.RGBAAt(20, 20) == Black {
		t.Error("circle filled center")
	}
}

func TestTextRendering(t *testing.T) {
	c := NewCanvas(100, 20)
	c.Text(2, 2, "Y=0.81", Black)
	// Some ink must have landed.
	ink := 0
	for x := 0; x < 100; x++ {
		for y := 0; y < 20; y++ {
			if c.Img.RGBAAt(x, y) == Black {
				ink++
			}
		}
	}
	if ink < 20 {
		t.Errorf("text rendered only %d pixels", ink)
	}
	if TextWidth("abc") != 3*glyphWidth {
		t.Errorf("TextWidth = %d", TextWidth("abc"))
	}
	// Unknown glyphs must not panic.
	c.Text(2, 12, "→❤", Black)
}

func TestFontCoversNeededGlyphs(t *testing.T) {
	needed := "0123456789.+-=/%(),:^_ " +
		"abcdefghijklmnopqrstuvwxyz" +
		"ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	for _, r := range needed {
		if _, ok := font5x7[r]; !ok {
			t.Errorf("font missing glyph %q", r)
		}
	}
}

func TestSavePNGRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.png")
	c := NewCanvas(10, 10)
	c.Set(3, 3, Red)
	if err := c.SavePNG(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	img, err := png.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 10 || img.Bounds().Dy() != 10 {
		t.Errorf("decoded size %v", img.Bounds())
	}
	r, g, b, _ := img.At(3, 3).RGBA()
	if r>>8 != 200 || g>>8 != 50 || b>>8 != 50 {
		t.Errorf("pixel round trip = %d,%d,%d", r>>8, g>>8, b>>8)
	}
}

func TestSavePNGBadPath(t *testing.T) {
	c := NewCanvas(5, 5)
	if err := c.SavePNG("/nonexistent-dir-xyz/out.png"); err == nil {
		t.Error("expected error for bad path")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 1, 5)
	if len(ticks) < 3 || len(ticks) > 8 {
		t.Errorf("ticks = %v", ticks)
	}
	for _, tk := range ticks {
		if tk < 0 || tk > 1+1e-9 {
			t.Errorf("tick %g outside range", tk)
		}
	}
	if niceTicks(1, 1, 5) != nil {
		t.Error("degenerate range should give no ticks")
	}
}

func TestFormatTick(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{0.5, "0.5"},
		{1234567, "1.2e+06"},
		{0.0001, "1.0e-04"},
	}
	for _, c := range cases {
		if got := FormatTick(c.in); got != c.want {
			t.Errorf("FormatTick(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCorrelationPlot(t *testing.T) {
	simv := []float64{0.1, 0.5, 0.9, 0.75}
	modelv := []float64{0.12, 0.48, 0.91, 0.74}
	c := CorrelationPlot(simv, modelv, "test correlation")
	if c.W() == 0 || c.H() == 0 {
		t.Fatal("empty canvas")
	}
	// Purple markers must appear.
	found := false
	for x := 0; x < c.W() && !found; x++ {
		for y := 0; y < c.H(); y++ {
			if c.Img.RGBAAt(x, y) == Purple {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("no scatter markers rendered")
	}
}

func TestDistributionPlot(t *testing.T) {
	h, err := num.NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	for i := 0; i < 1000; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	pdf := func(x float64) float64 { return 0.1 }
	c := DistributionPlot(h, pdf, "flat", "x", 1)
	if c.W() == 0 {
		t.Fatal("empty canvas")
	}
	// The red analytic curve must appear.
	found := false
	for x := 0; x < c.W() && !found; x++ {
		for y := 0; y < c.H(); y++ {
			if c.Img.RGBAAt(x, y) == Red {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("analytic curve not rendered")
	}
}

func TestGroupedBarChart(t *testing.T) {
	groups := []BarGroup{
		{Label: "a", Values: []float64{0.9, 0.8, 0.7, 0.6}},
		{Label: "b", Values: []float64{0.5, 0.4, 0.3, 0.2}},
	}
	c := GroupedBarChart(groups, []string{"s1", "s2", "s3", "s4"}, "bars")
	if c.W() == 0 {
		t.Fatal("empty canvas")
	}
	// Empty input should not panic.
	_ = GroupedBarChart(nil, []string{"x"}, "empty")
}

func TestWaferMapRendering(t *testing.T) {
	p := core.Baseline()
	m, err := sim.GenerateVoidMap(p, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	c := WaferMap(m, "test map")
	if c.W() == 0 {
		t.Fatal("empty canvas")
	}
	// Blue tails and red voids must appear somewhere.
	var blue, red bool
	for x := 0; x < c.W(); x++ {
		for y := 0; y < c.H(); y++ {
			switch c.Img.RGBAAt(x, y) {
			case Blue:
				blue = true
			case Red:
				red = true
			}
		}
	}
	if !blue || !red {
		t.Errorf("wafer map missing voids: blue=%v red=%v", blue, red)
	}
}

func TestLineChart(t *testing.T) {
	s := []Series{
		{Name: "a", X: []float64{1, 2, 3}, Y: []float64{0.5, 0.7, 0.9}},
		{Name: "b", X: []float64{1, 2, 3}, Y: []float64{0.9, 0.6, 0.3}, Dashed: true},
	}
	c := LineChart(s, "lines", "x", "y", false)
	if c.W() == 0 {
		t.Fatal("empty canvas")
	}
	var blue, red bool
	for x := 0; x < c.W(); x++ {
		for y := 0; y < c.H(); y++ {
			switch c.Img.RGBAAt(x, y) {
			case Blue:
				blue = true
			case Red:
				red = true
			}
		}
	}
	if !blue || !red {
		t.Errorf("series colors missing: blue=%v red=%v", blue, red)
	}
	// Log axis and empty input must not panic.
	_ = LineChart(s, "log", "x", "y", true)
	_ = LineChart(nil, "empty", "x", "y", false)
	// Degenerate single-point series.
	_ = LineChart([]Series{{Name: "p", X: []float64{2}, Y: []float64{0.5}}}, "pt", "x", "y", false)
}

func TestYieldMap(t *testing.T) {
	p := core.Baseline()
	dies, err := p.W2WDieYields()
	if err != nil {
		t.Fatal(err)
	}
	c := YieldMap(dies, p.WaferRadius(), "yield map")
	if c.W() == 0 {
		t.Fatal("empty canvas")
	}
	// Die cells must be colored (non-white interior somewhere central).
	// Offset from the exact center: the wafer center sits on a die-grid
	// border, which renders as the gray stroke.
	mid := c.W()/2 + 7
	colored := false
	for dy := -50; dy <= 50 && !colored; dy++ {
		px := c.Img.RGBAAt(mid, c.H()/2+dy)
		if px != White && px != Gray && px != Black {
			colored = true
		}
	}
	if !colored {
		t.Error("yield map center not colored")
	}
	// Empty input must not panic.
	_ = YieldMap(nil, p.WaferRadius(), "empty")
}

func TestHeatmap(t *testing.T) {
	values := [][]float64{
		{0.1, 0.5, 0.9},
		{0.3, 0.7, 0.95},
	}
	c := Heatmap(values, []string{"a", "b", "c"}, []string{"r0", "r1"},
		"window", "x", "y", 0.8)
	if c.W() == 0 {
		t.Fatal("empty canvas")
	}
	// Low cells red-ish, high cells green-ish: sample the first and last
	// cell centers.
	lowCol := yieldColor(0.1)
	highCol := yieldColor(0.95)
	if lowCol.R < lowCol.G {
		t.Errorf("low yield color %v should be red-dominant", lowCol)
	}
	if highCol.G < highCol.R {
		t.Errorf("high yield color %v should be green-dominant", highCol)
	}
	// Degenerate inputs must not panic.
	_ = Heatmap(nil, nil, nil, "empty", "x", "y", 0.5)
	_ = Heatmap([][]float64{{math.NaN()}}, []string{"a"}, []string{"b"}, "nan", "x", "y", 0.5)
}

func TestYieldColorClamps(t *testing.T) {
	if yieldColor(-0.5) != yieldColor(0) {
		t.Error("below-zero not clamped")
	}
	if yieldColor(1.5) != yieldColor(1) {
		t.Error("above-one not clamped")
	}
	if yieldColor(math.NaN()) != Gray {
		t.Error("NaN should be gray")
	}
}

func TestColorsAreOpaque(t *testing.T) {
	for _, col := range []color.RGBA{White, Black, Gray, Purple, Blue, Red, Green, Orange} {
		if col.A != 255 {
			t.Errorf("color %v not opaque", col)
		}
	}
}
