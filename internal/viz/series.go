package viz

import (
	"image/color"
	"math"
)

// Series is one named curve of a line chart.
type Series struct {
	Name   string
	X, Y   []float64
	Color  color.Color
	Dashed bool
}

// LineChart renders one or more x-y series with shared axes — used for
// sweep outputs (yield vs pitch, yield vs defect density, ...). A nil
// series color picks from the standard palette. logX plots x on a log₁₀
// axis.
func LineChart(series []Series, title, xlabel, ylabel string, logX bool) *Canvas {
	c := NewCanvas(640, 440)
	if len(series) == 0 {
		return c
	}
	palette := []color.Color{Blue, Red, Green, Orange, Purple, Gray}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	tx := func(x float64) float64 {
		if logX {
			return math.Log10(x)
		}
		return x
	}
	for _, s := range series {
		for i := range s.X {
			x := tx(s.X[i])
			xmin = math.Min(xmin, x)
			xmax = math.Max(xmax, x)
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if !(xmax > xmin) {
		xmax = xmin + 1
	}
	pad := (ymax - ymin) * 0.08
	if pad == 0 {
		pad = 0.05
	}
	a := NewAxes(c, title, xlabel, ylabel, xmin, xmax, ymin-pad, ymax+pad)

	for si, s := range series {
		col := s.Color
		if col == nil {
			col = palette[si%len(palette)]
		}
		for i := 1; i < len(s.X); i++ {
			if s.Dashed && i%2 == 0 {
				continue
			}
			a.c.Line(a.PX(tx(s.X[i-1])), a.PY(s.Y[i-1]), a.PX(tx(s.X[i])), a.PY(s.Y[i]), col)
		}
		for i := range s.X {
			a.c.Disk(a.PX(tx(s.X[i])), a.PY(s.Y[i]), 2, col)
		}
	}

	// Legend along the top of the frame.
	lx := a.x0 + 8
	for si, s := range series {
		col := s.Color
		if col == nil {
			col = palette[si%len(palette)]
		}
		c.FillRect(lx, a.y0+6, 10, 3, col)
		c.Text(lx+13, a.y0+2, s.Name, Black)
		lx += 13 + TextWidth(s.Name) + 16
	}
	return c
}
