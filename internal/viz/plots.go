package viz

import (
	"fmt"
	"image/color"
	"math"

	"yap/internal/num"
)

// Axes maps data coordinates to the pixel frame of a plot and draws the
// frame, ticks and labels.
type Axes struct {
	c                      *Canvas
	x0, y0, x1, y1         int // pixel frame (y grows downward)
	xmin, xmax, ymin, ymax float64
}

// NewAxes lays out a plot frame with margins for the title and labels.
func NewAxes(c *Canvas, title, xlabel, ylabel string, xmin, xmax, ymin, ymax float64) *Axes {
	const left, right, top, bottom = 70, 20, 30, 45
	if xmax <= xmin {
		xmax = xmin + 1
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}
	a := &Axes{
		c:  c,
		x0: left, y0: top,
		x1: c.W() - right, y1: c.H() - bottom,
		xmin: xmin, xmax: xmax, ymin: ymin, ymax: ymax,
	}
	// Frame.
	c.StrokeRect(a.x0, a.y0, a.x1-a.x0+1, a.y1-a.y0+1, Black)
	// Title centered.
	c.Text((c.W()-TextWidth(title))/2, 10, title, Black)
	// Axis labels.
	c.Text((a.x0+a.x1-TextWidth(xlabel))/2, c.H()-14, xlabel, Black)
	c.Text(6, a.y0-14, ylabel, Black)
	a.drawTicks()
	return a
}

func (a *Axes) drawTicks() {
	for _, t := range niceTicks(a.xmin, a.xmax, 5) {
		px := a.PX(t)
		a.c.Line(px, a.y1, px, a.y1+4, Black)
		label := FormatTick(t)
		a.c.Text(px-TextWidth(label)/2, a.y1+8, label, Black)
		// Light gridline.
		a.c.Line(px, a.y0+1, px, a.y1-1, LightGray)
	}
	for _, t := range niceTicks(a.ymin, a.ymax, 5) {
		py := a.PY(t)
		a.c.Line(a.x0-4, py, a.x0, py, Black)
		label := FormatTick(t)
		a.c.Text(a.x0-6-TextWidth(label), py-3, label, Black)
		a.c.Line(a.x0+1, py, a.x1-1, py, LightGray)
	}
	// Redraw the frame over gridlines.
	a.c.StrokeRect(a.x0, a.y0, a.x1-a.x0+1, a.y1-a.y0+1, Black)
}

// PX maps a data x to a pixel column.
func (a *Axes) PX(x float64) int {
	return a.x0 + int(math.Round((x-a.xmin)/(a.xmax-a.xmin)*float64(a.x1-a.x0)))
}

// PY maps a data y to a pixel row (inverted axis).
func (a *Axes) PY(y float64) int {
	return a.y1 - int(math.Round((y-a.ymin)/(a.ymax-a.ymin)*float64(a.y1-a.y0)))
}

// Scatter draws points as filled disks.
func (a *Axes) Scatter(xs, ys []float64, r int, col color.Color) {
	for i := range xs {
		a.c.Disk(a.PX(xs[i]), a.PY(ys[i]), r, col)
	}
}

// Polyline draws a connected data path.
func (a *Axes) Polyline(xs, ys []float64, col color.Color) {
	for i := 1; i < len(xs); i++ {
		a.c.Line(a.PX(xs[i-1]), a.PY(ys[i-1]), a.PX(xs[i]), a.PY(ys[i]), col)
	}
}

// IdentityLine draws y = x across the frame.
func (a *Axes) IdentityLine(col color.Color) {
	lo := math.Max(a.xmin, a.ymin)
	hi := math.Min(a.xmax, a.ymax)
	a.c.Line(a.PX(lo), a.PY(lo), a.PX(hi), a.PY(hi), col)
}

// Annotate writes a text line inside the frame at the given offset from the
// top-left corner.
func (a *Axes) Annotate(dx, dy int, s string, col color.Color) {
	a.c.Text(a.x0+dx, a.y0+dy, s, col)
}

// niceTicks returns ~n round tick values covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if hi <= lo || n < 2 {
		return nil
	}
	raw := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch r := raw / mag; {
	case r < 1.5:
		step = mag
	case r < 3.5:
		step = 2 * mag
	case r < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var ticks []float64
	for t := math.Ceil(lo/step) * step; t <= hi+step*1e-9; t += step {
		ticks = append(ticks, t)
	}
	return ticks
}

// CorrelationPlot renders a model-vs-simulation scatter (the layout of the
// paper's Figs. 5, 8b, 9b–d, 10): simulation on x, model on y, identity
// line, and the MSE annotated.
func CorrelationPlot(simVals, modelVals []float64, title string) *Canvas {
	c := NewCanvas(520, 460)
	lo, hi := dataRange(append(append([]float64{}, simVals...), modelVals...))
	pad := (hi - lo) * 0.05
	if pad == 0 {
		pad = 0.05
	}
	a := NewAxes(c, title, "simulation yield", "model", lo-pad, hi+pad, lo-pad, hi+pad)
	a.IdentityLine(Gray)
	a.Scatter(simVals, modelVals, 2, Purple)
	mse := num.MSE(simVals, modelVals)
	a.Annotate(8, 8, fmt.Sprintf("MSE=%.2e", mse), Black)
	if r := num.Pearson(simVals, modelVals); !math.IsNaN(r) {
		a.Annotate(8, 20, fmt.Sprintf("r=%.4f", r), Black)
	}
	a.Annotate(8, 32, fmt.Sprintf("n=%d", len(simVals)), Black)
	return c
}

// DistributionPlot overlays an empirical histogram (bars) with an analytic
// density curve (the layout of Figs. 8a and 9a). Scale factors convert the
// x-axis into display units.
func DistributionPlot(h *num.Histogram, pdf func(float64) float64, title, xlabel string, xscale float64) *Canvas {
	c := NewCanvas(520, 400)
	centers := h.Centers()
	dens := h.Densities()
	ymax := 0.0
	for i, d := range dens {
		if d > ymax {
			ymax = d
		}
		if v := pdf(centers[i]); v > ymax {
			ymax = v
		}
	}
	if ymax == 0 {
		ymax = 1
	}
	// The x-axis runs in display units; densities stay in SI units (the
	// comparison is shape-for-shape, shared by histogram and curve).
	a := NewAxes(c, title, xlabel, "density", h.Min*xscale, h.Max*xscale, 0, ymax*1.1)
	barW := a.PX(centers[0]*xscale+h.BinWidth()*xscale/2) - a.PX(centers[0]*xscale-h.BinWidth()*xscale/2)
	for i := range centers {
		px := a.PX(centers[i] * xscale)
		py := a.PY(dens[i])
		c.FillRect(px-barW/2, py, barW, a.y1-py, color.RGBA{150, 180, 230, 255})
	}
	// Analytic curve sampled densely.
	const samples = 300
	xs := make([]float64, samples)
	ys := make([]float64, samples)
	for i := 0; i < samples; i++ {
		x := h.Min + (h.Max-h.Min)*float64(i)/(samples-1)
		xs[i] = x * xscale
		ys[i] = pdf(x)
	}
	a.Polyline(xs, ys, Red)
	a.Annotate(8, 8, fmt.Sprintf("samples=%d", h.N), Black)
	return c
}

// BarGroup is one labeled cluster of bars in a grouped bar chart.
type BarGroup struct {
	Label  string
	Values []float64
}

// GroupedBarChart renders the case-study yield breakdowns (Figs. 11–12):
// one cluster per configuration, one bar per series (Y_ovl, Y_cr, Y_df, Y).
func GroupedBarChart(groups []BarGroup, series []string, title string) *Canvas {
	c := NewCanvas(200+110*len(groups), 420)
	a := NewAxes(c, title, "", "yield", 0, float64(len(groups)), 0, 1.05)
	colors := []color.Color{Blue, Green, Orange, Purple, Red, Gray}
	if len(groups) == 0 {
		return c
	}
	nSeries := len(series)
	for gi, g := range groups {
		span := a.PX(float64(gi)+1) - a.PX(float64(gi))
		barW := span / (nSeries + 1)
		for si, v := range g.Values {
			if si >= nSeries {
				break
			}
			px := a.PX(float64(gi)) + barW/2 + si*barW
			py := a.PY(v)
			col := colors[si%len(colors)]
			c.FillRect(px, py, barW-2, a.y1-py, col)
		}
		c.Text(a.PX(float64(gi))+4, a.y1+20, g.Label, Black)
	}
	// Legend.
	lx := a.x0 + 8
	for si, s := range series {
		col := colors[si%len(colors)]
		c.FillRect(lx, a.y0+6, 8, 8, col)
		c.Text(lx+11, a.y0+6, s, Black)
		lx += 11 + TextWidth(s) + 14
	}
	return c
}

func dataRange(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if math.IsInf(lo, 1) {
		return 0, 1
	}
	return lo, hi
}
