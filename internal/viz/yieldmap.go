package viz

import (
	"fmt"

	"yap/internal/core"
)

// YieldMap renders the per-die resolved W2W yield prediction as a wafer
// map: each die site colored by its model yield (red→green ramp), the
// spatial view of the paper's center-vs-edge survival observation.
func YieldMap(dies []core.DieYield, waferRadius float64, title string) *Canvas {
	const size = 700
	c := NewCanvas(size, size+30)
	c.Text((size-TextWidth(title))/2, 8, title, Black)
	if len(dies) == 0 {
		return c
	}

	cx, cy := size/2, 30+(size-30)/2
	scale := float64(size-60) / (2 * waferRadius)
	px := func(x float64) int { return cx + int(x*scale) }
	py := func(y float64) int { return cy - int(y*scale) }

	c.Circle(cx, cy, int(waferRadius*scale), Black)

	var minY, maxY = 2.0, -1.0
	var sum float64
	for _, d := range dies {
		if d.Total < minY {
			minY = d.Total
		}
		if d.Total > maxY {
			maxY = d.Total
		}
		sum += d.Total
	}
	for _, d := range dies {
		rect := d.Die.Rect
		x0, y0 := px(rect.X0), py(rect.Y1)
		w := px(rect.X1) - px(rect.X0)
		h := py(rect.Y0) - py(rect.Y1)
		c.FillRect(x0, y0, w, h, yieldColor(d.Total))
		c.StrokeRect(x0, y0, w, h, Gray)
	}

	c.Text(10, size+10, fmt.Sprintf("dies=%d mean=%s min=%s max=%s",
		len(dies), FormatTick(sum/float64(len(dies))), FormatTick(minY), FormatTick(maxY)), Black)
	return c
}
