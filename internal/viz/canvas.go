// Package viz renders the paper's figures as PNG images using only the
// standard library: model-vs-simulation correlation scatter plots (Figs. 5,
// 8b, 9, 10), distribution overlays (Figs. 8a, 9a), case-study bar charts
// (Figs. 11, 12) and the wafer void map (Fig. 6).
package viz

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"math"
	"os"
)

// Canvas is a drawable RGBA image with plotting primitives.
type Canvas struct {
	Img *image.RGBA
}

// Standard plot colors.
var (
	White     = color.RGBA{255, 255, 255, 255}
	Black     = color.RGBA{0, 0, 0, 255}
	Gray      = color.RGBA{180, 180, 180, 255}
	LightGray = color.RGBA{230, 230, 230, 255}
	Purple    = color.RGBA{120, 60, 170, 255}
	Blue      = color.RGBA{50, 90, 200, 255}
	Red       = color.RGBA{200, 50, 50, 255}
	Green     = color.RGBA{40, 140, 70, 255}
	Orange    = color.RGBA{235, 140, 30, 255}
)

// NewCanvas returns a white canvas of the given pixel size.
func NewCanvas(w, h int) *Canvas {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	c := &Canvas{Img: img}
	c.FillRect(0, 0, w, h, White)
	return c
}

// W returns the canvas width in pixels.
func (c *Canvas) W() int { return c.Img.Bounds().Dx() }

// H returns the canvas height in pixels.
func (c *Canvas) H() int { return c.Img.Bounds().Dy() }

// Set colors one pixel, ignoring out-of-bounds coordinates.
func (c *Canvas) Set(x, y int, col color.Color) {
	if x < 0 || y < 0 || x >= c.W() || y >= c.H() {
		return
	}
	c.Img.Set(x, y, col)
}

// FillRect fills the axis-aligned pixel rectangle [x, x+w) × [y, y+h).
func (c *Canvas) FillRect(x, y, w, h int, col color.Color) {
	for dy := 0; dy < h; dy++ {
		for dx := 0; dx < w; dx++ {
			c.Set(x+dx, y+dy, col)
		}
	}
}

// StrokeRect outlines a pixel rectangle.
func (c *Canvas) StrokeRect(x, y, w, h int, col color.Color) {
	c.Line(x, y, x+w-1, y, col)
	c.Line(x, y+h-1, x+w-1, y+h-1, col)
	c.Line(x, y, x, y+h-1, col)
	c.Line(x+w-1, y, x+w-1, y+h-1, col)
}

// Line draws a one-pixel line with Bresenham's algorithm.
func (c *Canvas) Line(x0, y0, x1, y1 int, col color.Color) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		c.Set(x0, y0, col)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// Disk fills a disk of the given pixel radius.
func (c *Canvas) Disk(cx, cy, r int, col color.Color) {
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if dx*dx+dy*dy <= r*r {
				c.Set(cx+dx, cy+dy, col)
			}
		}
	}
}

// Circle strokes a circle outline (midpoint algorithm).
func (c *Canvas) Circle(cx, cy, r int, col color.Color) {
	x, y := r, 0
	err := 1 - r
	for x >= y {
		for _, p := range [8][2]int{
			{x, y}, {y, x}, {-y, x}, {-x, y},
			{-x, -y}, {-y, -x}, {y, -x}, {x, -y},
		} {
			c.Set(cx+p[0], cy+p[1], col)
		}
		y++
		if err < 0 {
			err += 2*y + 1
		} else {
			x--
			err += 2*(y-x) + 1
		}
	}
}

// Text renders s at (x, y) (top-left corner) in the embedded 5×7 font.
// Unknown glyphs render as blanks.
func (c *Canvas) Text(x, y int, s string, col color.Color) {
	cx := x
	for _, r := range s {
		if glyph, ok := font5x7[r]; ok {
			for row := 0; row < 7; row++ {
				bits := glyph[row]
				for colBit := 0; colBit < 5; colBit++ {
					if bits&(1<<(4-colBit)) != 0 {
						c.Set(cx+colBit, y+row, col)
					}
				}
			}
		}
		cx += glyphWidth
	}
}

// TextWidth returns the pixel width of s in the embedded font.
func TextWidth(s string) int { return len([]rune(s)) * glyphWidth }

// SavePNG writes the canvas to path.
func (c *Canvas) SavePNG(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("viz: create %s: %w", path, err)
	}
	defer f.Close()
	if err := png.Encode(f, c.Img); err != nil {
		return fmt.Errorf("viz: encode %s: %w", path, err)
	}
	return f.Close()
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// FormatTick renders an axis tick value compactly.
func FormatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e4 || av < 1e-3:
		return fmt.Sprintf("%.1e", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
