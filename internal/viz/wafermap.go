package viz

import (
	"fmt"
	"image/color"

	"yap/internal/sim"
)

// WaferMap renders a simulated void map (Fig. 6 of the paper): the wafer
// outline, the die grid with defect-killed dies shaded, each particle with
// its main void disk, and the radially swept void tails.
func WaferMap(m *sim.VoidMap, title string) *Canvas {
	const size = 700
	c := NewCanvas(size, size+30)
	c.Text((size-TextWidth(title))/2, 8, title, Black)

	cx, cy := size/2, 30+(size-30)/2
	// Pixels per meter: fit the wafer with a small margin.
	scale := float64(size-60) / (2 * m.WaferRadius)
	px := func(x float64) int { return cx + int(x*scale) }
	py := func(y float64) int { return cy - int(y*scale) }

	// Wafer outline.
	c.Circle(cx, cy, int(m.WaferRadius*scale), Black)

	// Dies: killed dies shaded red, survivors light gray outline.
	killedFill := color.RGBA{245, 160, 160, 255}
	for i, rect := range m.PadRects {
		x0, y0 := px(rect.X0), py(rect.Y1)
		w := px(rect.X1) - px(rect.X0)
		h := py(rect.Y0) - py(rect.Y1)
		if m.Killed[i] {
			c.FillRect(x0, y0, w, h, killedFill)
		}
		c.StrokeRect(x0, y0, w, h, Gray)
	}

	// Voids: tails as dark lines, main voids as disks (at least 1 px so
	// sub-pixel voids stay visible), particles as dots.
	for _, v := range m.Voids {
		c.Line(px(v.Tail.A.X), py(v.Tail.A.Y), px(v.Tail.B.X), py(v.Tail.B.Y), Blue)
		r := int(v.MainRadius * scale)
		if r < 1 {
			r = 1
		}
		c.Disk(px(v.Particle.X), py(v.Particle.Y), r, Red)
	}

	c.Text(10, size+10, fmt.Sprintf("voids=%d killed=%d/%d dies",
		len(m.Voids), m.KilledCount(), len(m.Dies)), Black)
	return c
}
