package viz

import (
	"image/color"
	"math"
)

// Heatmap renders a matrix of values (rows × cols) as a colored grid with
// axis tick labels — used for process-window maps (yield over pitch ×
// defect density). values[j][i] maps to cell (col i, row j) with row 0 at
// the bottom. A contour at the threshold is marked by outlining cells that
// meet it.
func Heatmap(values [][]float64, xTicks, yTicks []string, title, xlabel, ylabel string, threshold float64) *Canvas {
	rows := len(values)
	if rows == 0 {
		return NewCanvas(300, 200)
	}
	cols := len(values[0])
	cell := 36
	const left, right, top, bottom = 90, 30, 30, 50
	c := NewCanvas(left+right+cols*cell, top+bottom+rows*cell)
	c.Text((c.W()-TextWidth(title))/2, 10, title, Black)
	c.Text((c.W()-TextWidth(xlabel))/2, c.H()-14, xlabel, Black)
	c.Text(6, top-14, ylabel, Black)

	for j := 0; j < rows; j++ {
		for i := 0; i < cols && i < len(values[j]); i++ {
			v := values[j][i]
			x := left + i*cell
			y := top + (rows-1-j)*cell
			c.FillRect(x, y, cell-1, cell-1, yieldColor(v))
			// Label each cell with its yield percentage.
			label := FormatTick(math.Round(v*100) / 100)
			c.Text(x+(cell-TextWidth(label))/2, y+cell/2-3, label, Black)
			if v >= threshold {
				c.StrokeRect(x, y, cell-1, cell-1, Black)
			}
		}
	}
	// Tick labels.
	for i, s := range xTicks {
		if i >= cols {
			break
		}
		c.Text(left+i*cell+(cell-TextWidth(s))/2, top+rows*cell+6, s, Black)
	}
	for j, s := range yTicks {
		if j >= rows {
			break
		}
		c.Text(left-6-TextWidth(s), top+(rows-1-j)*cell+cell/2-3, s, Black)
	}
	return c
}

// yieldColor maps a yield in [0,1] onto a red→yellow→green ramp.
func yieldColor(v float64) color.RGBA {
	if math.IsNaN(v) {
		return Gray
	}
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	// 0 → red (220,60,60), 0.5 → yellow (240,220,120), 1 → green (110,200,120).
	if v < 0.5 {
		f := v / 0.5
		return color.RGBA{
			R: uint8(220 + f*(240-220)),
			G: uint8(60 + f*(220-60)),
			B: uint8(60 + f*(120-60)),
			A: 255,
		}
	}
	f := (v - 0.5) / 0.5
	return color.RGBA{
		R: uint8(240 + f*(110-240)),
		G: uint8(220 + f*(200-220)),
		B: 120,
		A: 255,
	}
}
