package overlay

import (
	"yap/internal/num"
	"yap/internal/wafer"
)

// PlacementSpread is the die-to-die variation of the systematic overlay
// terms in D2W bonding (§III-E-1: "the systematic overlay error
// independently happens die-to-die"). Each die placement draws its own
// translation, rotation and magnification around the process means; the
// spreads below are the standard deviations of those draws, quoted at the
// same reference radius as the Distortion means (Table I's starred
// "Mean (Std.)" entries).
type PlacementSpread struct {
	// TXSigma and TYSigma are the translation spreads (m).
	TXSigma, TYSigma float64
	// RotationSigma is the rotation spread (rad).
	RotationSigma float64
	// MagnificationSigma is the magnification spread (dimensionless),
	// typically k_mag times the warpage spread via Eq. 2.
	MagnificationSigma float64
}

// Zero reports whether the spread is entirely deterministic.
func (s PlacementSpread) Zero() bool {
	return s.TXSigma == 0 && s.TYSigma == 0 && s.RotationSigma == 0 && s.MagnificationSigma == 0
}

// ExpectedDieYieldD2W returns Y_ovl,D2W averaged over the die-to-die
// placement variation: E[POS_die] with (T_x, T_y, α, E) drawn independently
// normal around the model's Distortion with the given spreads, each draw
// rescaled to the die (ScaleToDie) and evaluated through Eq. 23.
//
// The translation and rotation dimensions are smooth at the σ₁ scale and
// use the 7-point Gauss–Hermite rule; the magnification dimension — whose
// spread moves the corner misalignment by far more than the random-error
// width, making POS nearly a step function of E — is integrated adaptively.
// Total cost is a few thousand closed-form POS evaluations, keeping the
// analytic model orders of magnitude faster than per-die Monte-Carlo
// placement.
func (m Model) ExpectedDieYieldD2W(dieW, dieH, refRadius float64, spread PlacementSpread) float64 {
	if spread.Zero() {
		return m.DieYieldD2W(dieW, dieH, refRadius)
	}
	pads := wafer.PadArrayFor(dieW, dieH, m.Pads.Pitch)
	halfDiag := wafer.HalfDiagonal(dieW, dieH)
	delta := m.Delta()
	muSmooth := []float64{m.Dist.TX, m.Dist.TY, m.Dist.Rotation}
	sigmaSmooth := []float64{spread.TXSigma, spread.TYSigma, spread.RotationSigma}
	pos := func(tx, ty, rot, mag float64) float64 {
		dist := Distortion{TX: tx, TY: ty, Rotation: rot, Magnification: mag}.
			ScaleToDie(refRadius, halfDiag)
		return DiePOS(dist, pads.Rect, delta, m.Sigma1)
	}
	y := num.ExpectNormalAdaptive(func(mag float64) float64 {
		return num.ExpectNormal(func(x []float64) float64 {
			return pos(x[0], x[1], x[2], mag)
		}, muSmooth, sigmaSmooth)
	}, m.Dist.Magnification, spread.MagnificationSigma)
	// Quadrature residue can push a saturated probability past its bounds
	// by ~1e-10; a yield must stay in [0, 1].
	return num.Clamp(y, 0, 1)
}
