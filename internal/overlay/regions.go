package overlay

import (
	"yap/internal/geom"
	"yap/internal/num"
	"yap/internal/wafer"
)

// PadRegion is one pad region's resolved overlay inputs: its pad-array
// rectangle in die-local coordinates and the survivable-misalignment bound
// δ of its pad geometry. It is the overlay-model view of a resolved
// internal/layout region; the types are kept generic here so layout can
// depend on overlay (for PadGeometry) without a cycle.
type PadRegion struct {
	// Rect is the region's pad-array rectangle (die-local meters).
	Rect geom.Rect
	// Delta is the region geometry's MaxMisalignment bound δ (m).
	Delta float64
}

// DiePOSRegions returns the possibility of survival of a die whose pads
// form heterogeneous regions under a shared distortion field (the YAP+
// generalization of Eq. 7): each region survives as its worst pad does
// (corner of the convex region rectangle), and the die POS is the product
// of per-region pad survival. Rects are evaluated against dist directly,
// so callers translate die-local rects into the distortion frame first
// when needed. For a single region the product reduces bit-identically to
// DiePOS (1·x == x).
func DiePOSRegions(dist Distortion, regions []PadRegion, sigma1 float64) float64 {
	pos := 1.0
	for _, r := range regions {
		pos *= PadPOS(dist.MaxOverRect(r.Rect), r.Delta, sigma1)
	}
	return pos
}

// WaferYieldW2WRegions is WaferYieldW2W for a heterogeneous pad layout:
// the average over all dies of the per-die region-product POS, with each
// region's die-local rectangle translated to the die's wafer position. The
// model's Pads field is not consulted — each region carries its own δ.
func (m Model) WaferYieldW2WRegions(layout wafer.Layout, regions []PadRegion) float64 {
	dies := layout.Dies()
	if len(dies) == 0 {
		return 0
	}
	var sum float64
	for _, die := range dies {
		c := die.Center()
		pos := 1.0
		for _, r := range regions {
			pos *= PadPOS(m.Dist.MaxOverRect(r.Rect.Translate(c)), r.Delta, m.Sigma1)
		}
		sum += pos
	}
	return sum / float64(len(dies))
}

// DieYieldD2WRegions is DieYieldD2W for a heterogeneous pad layout: the
// wafer-level rotation and magnification are rescaled to the die's
// half-diagonal and the region-product POS is evaluated in die-local
// coordinates.
func (m Model) DieYieldD2WRegions(dieW, dieH, refRadius float64, regions []PadRegion) float64 {
	dist := m.Dist.ScaleToDie(refRadius, wafer.HalfDiagonal(dieW, dieH))
	return DiePOSRegions(dist, regions, m.Sigma1)
}

// ExpectedDieYieldD2WRegions is ExpectedDieYieldD2W for a heterogeneous pad
// layout: the region-product POS averaged over the die-to-die placement
// variation with the same Gauss–Hermite × adaptive quadrature as the
// uniform path.
func (m Model) ExpectedDieYieldD2WRegions(dieW, dieH, refRadius float64, spread PlacementSpread, regions []PadRegion) float64 {
	if spread.Zero() {
		return m.DieYieldD2WRegions(dieW, dieH, refRadius, regions)
	}
	halfDiag := wafer.HalfDiagonal(dieW, dieH)
	muSmooth := []float64{m.Dist.TX, m.Dist.TY, m.Dist.Rotation}
	sigmaSmooth := []float64{spread.TXSigma, spread.TYSigma, spread.RotationSigma}
	pos := func(tx, ty, rot, mag float64) float64 {
		dist := Distortion{TX: tx, TY: ty, Rotation: rot, Magnification: mag}.
			ScaleToDie(refRadius, halfDiag)
		return DiePOSRegions(dist, regions, m.Sigma1)
	}
	y := num.ExpectNormalAdaptive(func(mag float64) float64 {
		return num.ExpectNormal(func(x []float64) float64 {
			return pos(x[0], x[1], x[2], mag)
		}, muSmooth, sigmaSmooth)
	}, m.Dist.Magnification, spread.MagnificationSigma)
	// Quadrature residue can push a saturated probability past its bounds
	// by ~1e-10; a yield must stay in [0, 1].
	return num.Clamp(y, 0, 1)
}
