package overlay

import (
	"math"
	"testing"

	"yap/internal/geom"
	"yap/internal/units"
	"yap/internal/wafer"
)

// basePads is the Table I pad stack: 6 µm pitch, 2/3 µm pads, k = 0.75.
func basePads() PadGeometry {
	return PadGeometry{
		Pitch:                    6 * units.Micrometer,
		TopDiameter:              2 * units.Micrometer,
		BottomDiameter:           3 * units.Micrometer,
		ContactAreaFraction:      0.75,
		CriticalDistanceFraction: 0.75,
	}
}

func TestPadGeometryValidate(t *testing.T) {
	if err := basePads().Validate(); err != nil {
		t.Errorf("baseline rejected: %v", err)
	}
	mutations := []func(*PadGeometry){
		func(g *PadGeometry) { g.Pitch = 0 },
		func(g *PadGeometry) { g.TopDiameter = 0 },
		func(g *PadGeometry) { g.BottomDiameter = -1 },
		func(g *PadGeometry) { g.TopDiameter = 4 * units.Micrometer },    // d1 > d2
		func(g *PadGeometry) { g.BottomDiameter = 7 * units.Micrometer }, // d2 > p
		func(g *PadGeometry) { g.ContactAreaFraction = 0 },
		func(g *PadGeometry) { g.ContactAreaFraction = 1.5 },
		func(g *PadGeometry) { g.CriticalDistanceFraction = -0.1 },
	}
	for i, mutate := range mutations {
		g := basePads()
		mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDeltaCriticalDistanceClosedForm(t *testing.T) {
	// δ_cd = (1−k_cd)p − d1/2 + (k_cd−1/2)d2 = 0.25·6 − 1 + 0.25·3 = 1.25 µm.
	g := basePads()
	want := 1.25 * units.Micrometer
	if got := g.DeltaCriticalDistance(); math.Abs(got-want) > 1e-12 {
		t.Errorf("δ_cd = %g, want %g", got, want)
	}
}

func TestDeltaContactAreaSatisfiesConstraint(t *testing.T) {
	g := basePads()
	delta := g.DeltaContactArea()
	r1 := g.TopRadius()
	target := g.ContactAreaFraction * math.Pi * r1 * r1
	// At δ_ca the contact area equals the constraint.
	got := g.ContactArea(delta)
	if math.Abs(got-target) > 1e-6*target {
		t.Errorf("S_ovl(δ_ca) = %g, want %g", got, target)
	}
	// Just inside, the constraint holds; just outside, it fails.
	if g.ContactArea(delta*0.999) < target {
		t.Error("contact area below target inside δ_ca")
	}
	if g.ContactArea(delta*1.001) > target {
		t.Error("contact area above target outside δ_ca")
	}
}

func TestDeltaContactAreaFullOverlapWindow(t *testing.T) {
	// For k_ca ≤ 1, δ_ca is always at least the containment range r2−r1.
	g := basePads()
	if got := g.DeltaContactArea(); got < g.BottomRadius()-g.TopRadius() {
		t.Errorf("δ_ca = %g below containment bound", got)
	}
	// k_ca = 1: δ_ca collapses to exactly the containment bound.
	g.ContactAreaFraction = 1
	want := g.BottomRadius() - g.TopRadius()
	if got := g.DeltaContactArea(); math.Abs(got-want) > 1e-9*want {
		t.Errorf("δ_ca(k_ca=1) = %g, want %g", got, want)
	}
}

func TestMaxMisalignmentIsMin(t *testing.T) {
	g := basePads()
	want := math.Min(g.DeltaContactArea(), g.DeltaCriticalDistance())
	if got := g.MaxMisalignment(); got != want {
		t.Errorf("δ = %g, want min(%g, %g)", got, g.DeltaContactArea(), g.DeltaCriticalDistance())
	}
}

func TestFinePitchDeltaRegime(t *testing.T) {
	// At 1 µm pitch with d2 = p/2, d1 = p/3, δ lands near 165 nm — the
	// regime where Table I distortions produce visible D2W yield loss.
	g := PadGeometry{
		Pitch:                    1 * units.Micrometer,
		TopDiameter:              1.0 / 3 * units.Micrometer,
		BottomDiameter:           0.5 * units.Micrometer,
		ContactAreaFraction:      0.75,
		CriticalDistanceFraction: 0.75,
	}
	delta := g.MaxMisalignment()
	if delta < 120*units.Nanometer || delta > 220*units.Nanometer {
		t.Errorf("fine-pitch δ = %v, want ~165 nm", units.FormatMeters(delta))
	}
}

func TestMagnificationFromWarpage(t *testing.T) {
	// Table I: k_mag = 0.09 m⁻¹, B = 10 µm ⇒ E = 0.9 ppm.
	got := MagnificationFromWarpage(0.09, 10*units.Micrometer)
	if math.Abs(got-0.9e-6) > 1e-12 {
		t.Errorf("E = %g, want 0.9e-6", got)
	}
}

func TestDistortionDisplacement(t *testing.T) {
	d := Distortion{TX: 1e-9, TY: 2e-9, Rotation: 1e-6, Magnification: 2e-6}
	p := geom.Vec2{X: 0.1, Y: 0.05}
	got := d.Displacement(p)
	wantX := 1e-9 - 1e-6*0.05 + 2e-6*0.1
	wantY := 2e-9 + 1e-6*0.1 + 2e-6*0.05
	if math.Abs(got.X-wantX) > 1e-18 || math.Abs(got.Y-wantY) > 1e-18 {
		t.Errorf("displacement = %v, want (%g, %g)", got, wantX, wantY)
	}
}

func TestDistortionMagnitudeAtOrigin(t *testing.T) {
	d := Distortion{TX: 3e-9, TY: 4e-9, Rotation: 5e-6, Magnification: 5e-6}
	// At the origin rotation and magnification vanish: s = |(TX, TY)|.
	if got := d.Magnitude(geom.Vec2{}); math.Abs(got-5e-9) > 1e-18 {
		t.Errorf("s(0,0) = %g, want 5e-9", got)
	}
}

func TestMaxOverRectMatchesDenseGrid(t *testing.T) {
	d := Distortion{TX: 5e-9, TY: -3e-9, Rotation: 2e-6, Magnification: 1e-6}
	r := geom.Rect{X0: -0.004, Y0: -0.005, X1: 0.006, Y1: 0.003}
	got := d.MaxOverRect(r)
	want := 0.0
	const steps = 200
	for i := 0; i <= steps; i++ {
		for j := 0; j <= steps; j++ {
			p := geom.Vec2{
				X: r.X0 + float64(i)/steps*r.Width(),
				Y: r.Y0 + float64(j)/steps*r.Height(),
			}
			if s := d.Magnitude(p); s > want {
				want = s
			}
		}
	}
	if got < want-1e-15 {
		t.Errorf("MaxOverRect = %g below dense-grid max %g", got, want)
	}
	if got > want*1.0001 {
		t.Errorf("MaxOverRect = %g implausibly above grid max %g", got, want)
	}
}

func TestMinOverRectNullPointInside(t *testing.T) {
	// Pure magnification: the null point is the origin; any rect containing
	// it has zero minimum.
	d := Distortion{Magnification: 1e-6}
	r := geom.Rect{X0: -0.01, Y0: -0.01, X1: 0.01, Y1: 0.01}
	if got := d.MinOverRect(r); got != 0 {
		t.Errorf("min with interior null point = %g, want 0", got)
	}
}

func TestMinOverRectMatchesDenseGrid(t *testing.T) {
	cases := []struct {
		d Distortion
		r geom.Rect
	}{
		{Distortion{TX: 5e-9, TY: -3e-9, Rotation: 2e-6, Magnification: 1e-6},
			geom.Rect{X0: 0.002, Y0: 0.001, X1: 0.006, Y1: 0.004}},
		{Distortion{TX: -2e-8, TY: 1e-8, Rotation: -1e-6, Magnification: 3e-6},
			geom.Rect{X0: -0.006, Y0: 0.002, X1: -0.001, Y1: 0.007}},
		{Distortion{TX: 1e-9, TY: 1e-9}, // pure translation
			geom.Rect{X0: 0, Y0: 0, X1: 0.01, Y1: 0.01}},
	}
	for k, c := range cases {
		got := c.d.MinOverRect(c.r)
		want := math.Inf(1)
		const steps = 400
		for i := 0; i <= steps; i++ {
			for j := 0; j <= steps; j++ {
				p := geom.Vec2{
					X: c.r.X0 + float64(i)/steps*c.r.Width(),
					Y: c.r.Y0 + float64(j)/steps*c.r.Height(),
				}
				if s := c.d.Magnitude(p); s < want {
					want = s
				}
			}
		}
		if got > want+1e-15 {
			t.Errorf("case %d: MinOverRect = %g above grid min %g", k, got, want)
		}
		if got < want*0.99-1e-15 {
			t.Errorf("case %d: MinOverRect = %g implausibly below grid min %g", k, got, want)
		}
	}
}

func TestScaleToDiePreservesEdgeError(t *testing.T) {
	// The marker alignment error at the maximum edge distance is an
	// equipment property: α·R_ref must equal α'·r_die.
	d := Distortion{Rotation: 0.1e-6, Magnification: 0.9e-6}
	refR := 0.15
	dieHalfDiag := wafer.HalfDiagonal(10e-3, 10e-3)
	scaled := d.ScaleToDie(refR, dieHalfDiag)
	if got, want := scaled.Rotation*dieHalfDiag, d.Rotation*refR; math.Abs(got-want) > 1e-18 {
		t.Errorf("rotation edge error %g, want %g", got, want)
	}
	if got, want := scaled.Magnification*dieHalfDiag, d.Magnification*refR; math.Abs(got-want) > 1e-18 {
		t.Errorf("magnification edge error %g, want %g", got, want)
	}
	// Translation is untouched.
	d.TX, d.TY = 5e-9, 7e-9
	scaled = d.ScaleToDie(refR, dieHalfDiag)
	if scaled.TX != d.TX || scaled.TY != d.TY {
		t.Error("translation should not scale")
	}
	// Degenerate half-diagonal: unchanged.
	if got := d.ScaleToDie(refR, 0); got != d {
		t.Error("zero half-diagonal should be identity")
	}
}

func TestPadPOSProperties(t *testing.T) {
	delta, sigma := 1e-6, 5e-9
	// Perfect alignment: probability ≈ 1.
	if got := PadPOS(0, delta, sigma); got < 0.9999 {
		t.Errorf("POS(0) = %g", got)
	}
	// Monotone decreasing in |s|.
	prev := 2.0
	for s := 0.0; s < 2e-6; s += 1e-8 {
		pos := PadPOS(s, delta, sigma)
		if pos > prev+1e-15 {
			t.Fatalf("POS increased at s=%g", s)
		}
		prev = pos
	}
	// s far beyond δ: ≈ 0.
	if got := PadPOS(2e-6, delta, sigma); got > 1e-10 {
		t.Errorf("POS(2δ) = %g", got)
	}
	// Non-positive δ kills the pad.
	if got := PadPOS(0, 0, sigma); got != 0 {
		t.Errorf("POS with δ=0 should be 0, got %g", got)
	}
	// s at exactly δ: the window is half covered.
	if got := PadPOS(delta, delta, sigma); math.Abs(got-0.5) > 1e-6 {
		t.Errorf("POS(s=δ) = %g, want ~0.5", got)
	}
}

func TestWaferYieldW2WBaselineNearUnity(t *testing.T) {
	m := Model{
		Pads: basePads(),
		Dist: Distortion{
			TX: 5 * units.Nanometer, TY: 5 * units.Nanometer,
			Rotation:      0.1 * units.Microradian,
			Magnification: 0.9 * units.PPM,
		},
		Sigma1: 5 * units.Nanometer,
	}
	layout := wafer.Layout{WaferRadius: 0.15, DieWidth: 0.01, DieHeight: 0.01}
	y := m.WaferYieldW2W(layout)
	if y < 0.999 || y > 1 {
		t.Errorf("baseline W2W overlay yield = %g, want ≈ 1", y)
	}
}

func TestWaferYieldW2WDegradesWithDistortion(t *testing.T) {
	m := Model{Pads: basePads(), Sigma1: 5 * units.Nanometer}
	layout := wafer.Layout{WaferRadius: 0.15, DieWidth: 0.01, DieHeight: 0.01}
	// Crank magnification until edge dies fail: yield must fall below 1
	// but stay above 0 (center dies survive).
	m.Dist.Magnification = 8e-6 // 8 ppm ⇒ 1.2 µm at the wafer edge > δ
	y := m.WaferYieldW2W(layout)
	if y <= 0 || y >= 0.99 {
		t.Errorf("distorted W2W overlay yield = %g, want interior loss", y)
	}
	// Monotone: more magnification, less yield.
	m2 := m
	m2.Dist.Magnification = 12e-6
	if m2.WaferYieldW2W(layout) > y {
		t.Error("yield increased with magnification")
	}
}

func TestWaferYieldEmptyLayout(t *testing.T) {
	m := Model{Pads: basePads(), Sigma1: 5 * units.Nanometer}
	layout := wafer.Layout{WaferRadius: 0.004, DieWidth: 0.01, DieHeight: 0.01}
	if y := m.WaferYieldW2W(layout); y != 0 {
		t.Errorf("yield on empty layout = %g, want 0", y)
	}
}

func TestDieYieldD2WCenterDieEquivalence(t *testing.T) {
	// A D2W die has the distortion evaluated in its own frame; with scaling
	// disabled (half-diagonal = reference radius) and pure translation the
	// D2W yield equals the translation-only pad POS.
	m := Model{
		Pads:   basePads(),
		Dist:   Distortion{TX: 10 * units.Nanometer},
		Sigma1: 5 * units.Nanometer,
	}
	refR := wafer.HalfDiagonal(10e-3, 10e-3)
	got := m.DieYieldD2W(10e-3, 10e-3, refR)
	want := PadPOS(10*units.Nanometer, m.Pads.MaxMisalignment(), m.Sigma1)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("D2W translation-only yield = %g, want %g", got, want)
	}
}

func TestDieYieldD2WSmallerDieNotBetter(t *testing.T) {
	// With the edge-error-preserving scaling, shrinking the chiplet does
	// not reduce the corner misalignment — D2W yield is roughly
	// size-invariant under pure rotation/magnification (§IV-B).
	m := Model{
		Pads:   basePads(),
		Dist:   Distortion{Rotation: 0.1e-6, Magnification: 0.9e-6},
		Sigma1: 5 * units.Nanometer,
	}
	yLarge := m.DieYieldD2W(10e-3, 10e-3, 0.15)
	ySmall := m.DieYieldD2W(3.16e-3, 3.16e-3, 0.15)
	if math.Abs(yLarge-ySmall) > 1e-3 {
		t.Errorf("D2W overlay yield should be ~size-invariant: %g vs %g", yLarge, ySmall)
	}
}

func TestPadPOS2DVsScalarConvention(t *testing.T) {
	delta := 165 * units.Nanometer
	sigma := 5 * units.Nanometer
	// At zero systematic error: scalar gives 2Φ(δ/σ)−1 ≈ 1, Rice gives
	// 1−exp(−δ²/2σ²) ≈ 1 — indistinguishable at δ ≫ σ.
	if s2 := PadPOS2D(0, delta, sigma); s2 < 0.999999 {
		t.Errorf("2-D POS(0) = %g", s2)
	}
	// Near the cliff (s close to δ) the scalar convention is optimistic.
	for _, s := range []float64{140e-9, 160e-9, 165e-9, 170e-9} {
		scalar := PadPOS(s, delta, sigma)
		twoD := PadPOS2D(s, delta, sigma)
		if twoD > scalar+1e-9 {
			t.Errorf("s=%v: 2-D POS %g exceeds scalar %g", units.FormatMeters(s), twoD, scalar)
		}
	}
	// At s = δ exactly, scalar gives ~0.5 while the Rice magnitude can
	// escape only inward: 2-D is strictly below.
	scalar := PadPOS(delta, delta, sigma)
	twoD := PadPOS2D(delta, delta, sigma)
	if !(twoD < scalar && twoD > 0.3) {
		t.Errorf("at the cliff: scalar %g vs 2-D %g", scalar, twoD)
	}
	// Zero delta kills.
	if PadPOS2D(0, 0, sigma) != 0 {
		t.Error("2-D POS with δ=0 should be 0")
	}
}

func TestDiePOS2DWorstCorner(t *testing.T) {
	dist := Distortion{TX: 50e-9, Magnification: 18e-6}
	rect := geom.Rect{X0: -5e-3, Y0: -5e-3, X1: 5e-3, Y1: 5e-3}
	delta := 165 * units.Nanometer
	sigma := 5 * units.Nanometer
	want := PadPOS2D(dist.MaxOverRect(rect), delta, sigma)
	if got := DiePOS2D(dist, rect, delta, sigma); got != want {
		t.Errorf("DiePOS2D = %g, want worst-corner %g", got, want)
	}
}

func TestDiePOSExactUpperBoundedByEq7(t *testing.T) {
	// Eq. 7 keeps only the worst pad's window; the exact shared-error POS
	// intersects every pad's window and can only be smaller. In ordinary
	// regimes (δ ≫ σ₁) the two coincide to machine precision.
	dist := Distortion{TX: 50e-9, TY: -20e-9, Rotation: 2e-6, Magnification: 18e-6}
	rect := geom.Rect{X0: -5e-3, Y0: -5e-3, X1: 5e-3, Y1: 5e-3}
	delta := 165 * units.Nanometer
	sigma := 5 * units.Nanometer
	eq7 := DiePOS(dist, rect, delta, sigma)
	exact := DiePOSExact(dist, rect, delta, sigma)
	if eq7 < exact-1e-15 {
		t.Errorf("Eq. 7 (%g) must upper-bound exact (%g)", eq7, exact)
	}
	if eq7-exact > 1e-9 {
		t.Errorf("approximation gap %g too large for δ ≫ σ", eq7-exact)
	}
}

func TestDiePOSExactDivergesWhenSigmaComparableToDelta(t *testing.T) {
	// When σ₁ approaches δ the dropped s_min window side matters: the
	// exact value must fall strictly below Eq. 7's. The magnification term
	// spreads s over the die so that s_min ≠ s_max.
	dist := Distortion{TX: 100e-9, Magnification: 50e-6}
	rect := geom.Rect{X0: -1e-3, Y0: -1e-3, X1: 1e-3, Y1: 1e-3}
	delta := 120 * units.Nanometer
	sigma := 100 * units.Nanometer
	eq7 := DiePOS(dist, rect, delta, sigma)
	exact := DiePOSExact(dist, rect, delta, sigma)
	if eq7-exact < 1e-4 {
		t.Errorf("expected a visible gap in the σ₁≈δ regime: eq7=%g exact=%g", eq7, exact)
	}
}

func TestDiePOSExactZeroDelta(t *testing.T) {
	if got := DiePOSExact(Distortion{}, geom.Rect{X1: 1, Y1: 1}, 0, 1e-9); got != 0 {
		t.Errorf("POS with δ=0 should be 0, got %g", got)
	}
}

func TestExpectedDieYieldD2WZeroSpreadMatchesDeterministic(t *testing.T) {
	m := Model{
		Pads:   basePads(),
		Dist:   Distortion{TX: 5e-9, Rotation: 0.1e-6, Magnification: 0.9e-6},
		Sigma1: 5 * units.Nanometer,
	}
	got := m.ExpectedDieYieldD2W(10e-3, 10e-3, 0.15, PlacementSpread{})
	want := m.DieYieldD2W(10e-3, 10e-3, 0.15)
	if got != want {
		t.Errorf("zero spread expected yield = %g, want deterministic %g", got, want)
	}
}

func TestExpectedDieYieldD2WBounds(t *testing.T) {
	m := Model{
		Pads:   basePads(),
		Dist:   Distortion{TX: 5e-9, TY: 5e-9, Rotation: 0.1e-6, Magnification: 0.9e-6},
		Sigma1: 5 * units.Nanometer,
	}
	spread := PlacementSpread{
		TXSigma: 10e-9, TYSigma: 10e-9,
		RotationSigma:      0.05e-6,
		MagnificationSigma: 0.27e-6,
	}
	y := m.ExpectedDieYieldD2W(10e-3, 10e-3, 0.15, spread)
	if y < 0 || y > 1 {
		t.Errorf("expected yield %g outside [0,1]", y)
	}
	// Averaging over placement spread cannot beat the best-case
	// deterministic yield at zero systematic error.
	best := Model{Pads: m.Pads, Sigma1: m.Sigma1}.DieYieldD2W(10e-3, 10e-3, 0.15)
	if y > best+1e-12 {
		t.Errorf("expected yield %g exceeds zero-error yield %g", y, best)
	}
}

func TestExpectedDieYieldD2WMatchesMonteCarlo(t *testing.T) {
	// The quadrature must agree with brute-force Monte-Carlo placement
	// draws in the hard fine-pitch regime.
	pads := PadGeometry{
		Pitch:                    1 * units.Micrometer,
		TopDiameter:              1.0 / 3 * units.Micrometer,
		BottomDiameter:           0.5 * units.Micrometer,
		ContactAreaFraction:      0.75,
		CriticalDistanceFraction: 0.75,
	}
	m := Model{
		Pads:   pads,
		Dist:   Distortion{TX: 5e-9, TY: 5e-9, Rotation: 0.1e-6, Magnification: 0.9e-6},
		Sigma1: 5 * units.Nanometer,
	}
	spread := PlacementSpread{
		TXSigma: 10e-9, TYSigma: 10e-9,
		RotationSigma:      0.05e-6,
		MagnificationSigma: 0.27e-6,
	}
	got := m.ExpectedDieYieldD2W(10e-3, 10e-3, 0.15, spread)

	// Monte-Carlo reference with deterministic subrandom draws (Halton-ish
	// stratified normal quantiles would be overkill; plain LCG suffices at
	// 200k samples for ~0.3% accuracy).
	padsArr := wafer.PadArrayFor(10e-3, 10e-3, pads.Pitch)
	delta := pads.MaxMisalignment()
	halfDiag := wafer.HalfDiagonal(10e-3, 10e-3)
	var state uint64 = 12345
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	gauss := func() float64 {
		// Box-Muller from two uniforms.
		u1, u2 := next(), next()
		if u1 < 1e-300 {
			u1 = 1e-300
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
	const nMC = 200000
	var sum float64
	for i := 0; i < nMC; i++ {
		dist := Distortion{
			TX:            m.Dist.TX + spread.TXSigma*gauss(),
			TY:            m.Dist.TY + spread.TYSigma*gauss(),
			Rotation:      m.Dist.Rotation + spread.RotationSigma*gauss(),
			Magnification: m.Dist.Magnification + spread.MagnificationSigma*gauss(),
		}.ScaleToDie(0.15, halfDiag)
		sum += DiePOS(dist, padsArr.Rect, delta, m.Sigma1)
	}
	mc := sum / nMC
	if math.Abs(got-mc) > 0.01 {
		t.Errorf("quadrature %g vs Monte-Carlo %g", got, mc)
	}
}
