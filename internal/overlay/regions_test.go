package overlay

import (
	"math"
	"testing"

	"yap/internal/geom"
	"yap/internal/units"
	"yap/internal/wafer"
)

// stressedModel is a distortion field strong enough that region structure
// matters (yields strictly between 0 and 1 at the 300 mm layout).
func stressedModel() Model {
	return Model{
		Pads: basePads(),
		Dist: Distortion{
			TX: 5 * units.Nanometer, TY: 5 * units.Nanometer,
			Rotation:      0.1 * units.Microradian,
			Magnification: 17 * units.PPM,
		},
		Sigma1: 5 * units.Nanometer,
	}
}

// TestW2WRegionsSingleRegionBitIdentical pins the YAP+ identity for W2W:
// one region carrying the legacy pad-array rectangle and δ must reproduce
// WaferYieldW2W bit for bit (the region product starts at 1.0 and
// 1.0·x == x exactly; the translated rect additions match PadArrayRectOn
// term by term).
func TestW2WRegionsSingleRegionBitIdentical(t *testing.T) {
	m := stressedModel()
	lay := wafer.Layout{WaferRadius: 0.15, DieWidth: 0.01, DieHeight: 0.01}
	pads := wafer.PadArrayFor(lay.DieWidth, lay.DieHeight, m.Pads.Pitch)
	regions := []PadRegion{{Rect: pads.Rect, Delta: m.Delta()}}
	legacy := m.WaferYieldW2W(lay)
	region := m.WaferYieldW2WRegions(lay, regions)
	if legacy != region {
		t.Errorf("single-region W2W = %x, legacy = %x; must be bit-identical",
			math.Float64bits(region), math.Float64bits(legacy))
	}
	if legacy <= 0 || legacy >= 1 {
		t.Fatalf("test model not in the informative regime: y = %g", legacy)
	}
}

// TestD2WRegionsSingleRegionBitIdentical pins the same identity for the
// D2W paths, deterministic and placement-averaged.
func TestD2WRegionsSingleRegionBitIdentical(t *testing.T) {
	m := stressedModel()
	const dieW, dieH = 0.01, 0.01
	const refR = 0.15
	pads := wafer.PadArrayFor(dieW, dieH, m.Pads.Pitch)
	regions := []PadRegion{{Rect: pads.Rect, Delta: m.Delta()}}

	if legacy, region := m.DieYieldD2W(dieW, dieH, refR),
		m.DieYieldD2WRegions(dieW, dieH, refR, regions); legacy != region {
		t.Errorf("single-region D2W = %x, legacy = %x", math.Float64bits(region), math.Float64bits(legacy))
	}

	spread := PlacementSpread{
		TXSigma: 10 * units.Nanometer, TYSigma: 10 * units.Nanometer,
		RotationSigma:      0.05 * units.Microradian,
		MagnificationSigma: 0.27 * units.PPM,
	}
	legacy := m.ExpectedDieYieldD2W(dieW, dieH, refR, spread)
	region := m.ExpectedDieYieldD2WRegions(dieW, dieH, refR, spread, regions)
	if legacy != region {
		t.Errorf("single-region expected D2W = %x, legacy = %x",
			math.Float64bits(region), math.Float64bits(legacy))
	}
	if zero := m.ExpectedDieYieldD2WRegions(dieW, dieH, refR, PlacementSpread{}, regions); zero != m.DieYieldD2WRegions(dieW, dieH, refR, regions) {
		t.Error("zero spread does not reduce to the deterministic region path")
	}
}

// TestDiePOSRegionsProduct checks the product structure: two disjoint
// regions multiply, and a tight-δ region drags the die below the loose
// region alone.
func TestDiePOSRegionsProduct(t *testing.T) {
	m := stressedModel()
	dist := m.Dist
	a := PadRegion{Rect: geom.Rect{X0: -0.004, Y0: -0.004, X1: 0, Y1: 0.004}, Delta: 50 * units.Nanometer}
	b := PadRegion{Rect: geom.Rect{X0: 0, Y0: -0.004, X1: 0.004, Y1: 0.004}, Delta: 200 * units.Nanometer}
	pa := DiePOSRegions(dist, []PadRegion{a}, m.Sigma1)
	pb := DiePOSRegions(dist, []PadRegion{b}, m.Sigma1)
	pab := DiePOSRegions(dist, []PadRegion{a, b}, m.Sigma1)
	if got, want := pab, pa*pb; got != want {
		t.Errorf("two-region POS = %g, want product %g", got, want)
	}
	if !(pab <= pb && pab <= pa) {
		t.Errorf("region product %g exceeds a factor (%g, %g)", pab, pa, pb)
	}
	if pa >= pb {
		t.Errorf("tight-δ region (%g) should survive less than loose one (%g)", pa, pb)
	}
}
