// Package overlay implements the YAP overlay-error yield model (§III-A of
// the paper): the systematic wafer distortion field built from translation,
// rotation and warpage-induced magnification (Eq. 2–4), the maximum
// survivable misalignment δ derived from the contact-area and
// critical-distance constraints (Eq. 5–6), and the resulting pad-, die- and
// wafer-level possibilities of survival (Eq. 1, 7, 8) together with the D2W
// variant (Eq. 23).
package overlay

import (
	"fmt"
	"math"

	"yap/internal/geom"
	"yap/internal/num"
	"yap/internal/wafer"
)

// PadGeometry describes the Cu pad stack-up of one bonding interface.
type PadGeometry struct {
	// Pitch is the pad pitch p (m).
	Pitch float64
	// TopDiameter is the top-pad diameter d₁ (m); the top pad is typically
	// the smaller one to increase misalignment tolerance.
	TopDiameter float64
	// BottomDiameter is the bottom-pad diameter d₂ (m).
	BottomDiameter float64
	// ContactAreaFraction is k_ca: the contact area must exceed
	// k_ca·π·r₁² for the pad to survive.
	ContactAreaFraction float64
	// CriticalDistanceFraction is k_cd: the post-misalignment critical
	// distance must exceed k_cd·(p − d₂).
	CriticalDistanceFraction float64
}

// Validate reports whether the geometry is physical: positive dimensions,
// pads that fit the pitch, and constraint fractions in (0, 1].
func (g PadGeometry) Validate() error {
	switch {
	case g.Pitch <= 0:
		return fmt.Errorf("overlay: non-positive pitch %g", g.Pitch)
	case g.TopDiameter <= 0 || g.BottomDiameter <= 0:
		return fmt.Errorf("overlay: non-positive pad diameter (d1=%g, d2=%g)", g.TopDiameter, g.BottomDiameter)
	case g.TopDiameter > g.BottomDiameter:
		return fmt.Errorf("overlay: top pad d1=%g larger than bottom pad d2=%g", g.TopDiameter, g.BottomDiameter)
	case g.BottomDiameter >= g.Pitch:
		return fmt.Errorf("overlay: bottom pad d2=%g does not fit pitch %g", g.BottomDiameter, g.Pitch)
	case g.ContactAreaFraction <= 0 || g.ContactAreaFraction > 1:
		return fmt.Errorf("overlay: contact-area fraction k_ca=%g outside (0,1]", g.ContactAreaFraction)
	case g.CriticalDistanceFraction <= 0 || g.CriticalDistanceFraction > 1:
		return fmt.Errorf("overlay: critical-distance fraction k_cd=%g outside (0,1]", g.CriticalDistanceFraction)
	}
	return nil
}

// TopRadius returns r₁ = d₁/2.
func (g PadGeometry) TopRadius() float64 { return g.TopDiameter / 2 }

// BottomRadius returns r₂ = d₂/2.
func (g PadGeometry) BottomRadius() float64 { return g.BottomDiameter / 2 }

// ContactArea returns S_ovl(s), the Cu–Cu contact area of two pads
// misaligned by s (Eq. 5).
func (g PadGeometry) ContactArea(s float64) float64 {
	return geom.CircleLensArea(g.TopRadius(), g.BottomRadius(), s)
}

// MaxMisalignment returns δ, the largest misalignment a pad survives
// (Eq. 6): the tighter of
//
//   - δ_ca: the misalignment at which the contact area has shrunk to
//     k_ca·π·r₁². Because Eq. 5's middle branch is implicit in δ (θ₁ and θ₂
//     depend on it), δ_ca is found numerically on the monotone contact-area
//     curve rather than via the paper's implicit expression.
//   - δ_cd: the closed-form bound keeping the critical distance above
//     k_cd·(p − d₂):  δ_cd = (1−k_cd)·p − d₁/2 + (k_cd − ½)·d₂.
func (g PadGeometry) MaxMisalignment() float64 {
	return math.Min(g.DeltaContactArea(), g.DeltaCriticalDistance())
}

// DeltaContactArea returns δ_ca (see MaxMisalignment).
func (g PadGeometry) DeltaContactArea() float64 {
	r1, r2 := g.TopRadius(), g.BottomRadius()
	target := g.ContactAreaFraction * math.Pi * r1 * r1
	// Full containment (s ≤ r2−r1) always satisfies the constraint for
	// k_ca ≤ 1, so the solution lies in [r2−r1, r1+r2] where the contact
	// area decreases monotonically from π·r1² to 0.
	lo := r2 - r1
	hi := r1 + r2
	const tol = 1e-15
	return num.BisectMonotone(g.ContactArea, lo, hi, target, tol)
}

// DeltaCriticalDistance returns δ_cd (see MaxMisalignment). A negative
// value means the geometry violates the critical-distance rule even when
// perfectly aligned.
func (g PadGeometry) DeltaCriticalDistance() float64 {
	p, d1, d2 := g.Pitch, g.TopDiameter, g.BottomDiameter
	kcd := g.CriticalDistanceFraction
	return (1-kcd)*p - d1/2 + (kcd-0.5)*d2
}

// Distortion is the systematic component of the overlay error: the three
// wafer-scale distortion terms of Eq. 3.
type Distortion struct {
	// TX and TY are the translation errors (m).
	TX, TY float64
	// Rotation is the rotation error α (rad).
	Rotation float64
	// Magnification is the magnification (run-out) factor E, a
	// dimensionless strain typically derived from warpage via Eq. 2.
	Magnification float64
}

// MagnificationFromWarpage returns E = k_mag·B (Eq. 2): the linear fit of
// the magnification factor against bonded-wafer warpage B.
func MagnificationFromWarpage(kMag, warpage float64) float64 {
	return kMag * warpage
}

// Displacement returns the systematic pad displacement (Δx, Δy) at
// position p (Eq. 3):
//
//	Δx = T_x − α·y + E·x
//	Δy = T_y + α·x + E·y
func (d Distortion) Displacement(p geom.Vec2) geom.Vec2 {
	return geom.Vec2{
		X: d.TX - d.Rotation*p.Y + d.Magnification*p.X,
		Y: d.TY + d.Rotation*p.X + d.Magnification*p.Y,
	}
}

// Magnitude returns the systematic overlay error s(x, y) = |(Δx, Δy)|
// (Eq. 4).
func (d Distortion) Magnitude(p geom.Vec2) float64 {
	return d.Displacement(p).Norm()
}

// MaxOverRect returns the maximum of s(x, y) over the rectangle. s² is a
// sum of squares of affine functions of (x, y), hence convex, so the
// maximum is attained at one of the four corners.
func (d Distortion) MaxOverRect(r geom.Rect) float64 {
	var maxS float64
	for _, c := range r.Corners() {
		if s := d.Magnitude(c); s > maxS {
			maxS = s
		}
	}
	return maxS
}

// MinOverRect returns the minimum of s(x, y) over the rectangle. The
// unconstrained minimizer of the convex s² solves the 2×2 linear system
// Δx = Δy = 0; if it falls inside the rectangle the minimum is zero (the
// distortion null point), otherwise the minimum lies on the boundary where
// each edge restriction is a 1-D quadratic with a closed-form minimizer.
func (d Distortion) MinOverRect(r geom.Rect) float64 {
	e, a := d.Magnification, d.Rotation
	det := e*e + a*a
	if det == 0 {
		// Pure translation: s is constant.
		return math.Hypot(d.TX, d.TY)
	}
	// Solve [e −a; a e]·(x,y) = (−TX, −TY).
	x := (-d.TX*e - d.TY*a) / det
	y := (d.TX*a - d.TY*e) / det
	if r.Contains(geom.Vec2{X: x, Y: y}) {
		return 0
	}
	minS := math.Inf(1)
	// Bottom and top edges: y fixed, x ∈ [X0, X1].
	for _, yc := range [2]float64{r.Y0, r.Y1} {
		s := d.minOnSpan(r.X0, r.X1, func(x float64) geom.Vec2 { return geom.Vec2{X: x, Y: yc} })
		minS = math.Min(minS, s)
	}
	// Left and right edges: x fixed, y ∈ [Y0, Y1].
	for _, xc := range [2]float64{r.X0, r.X1} {
		s := d.minOnSpan(r.Y0, r.Y1, func(y float64) geom.Vec2 { return geom.Vec2{X: xc, Y: y} })
		minS = math.Min(minS, s)
	}
	return minS
}

// minOnSpan minimizes s along a 1-D parametrized edge. The squared
// magnitude along the edge is quadratic in the parameter with positive
// leading coefficient det, so the minimizer is the clamped vertex.
func (d Distortion) minOnSpan(t0, t1 float64, point func(float64) geom.Vec2) float64 {
	// Evaluate the quadratic through three samples to recover its vertex
	// without re-deriving edge-specific coefficients.
	f := func(t float64) float64 {
		dp := d.Displacement(point(t))
		return dp.Dot(dp)
	}
	mid := 0.5 * (t0 + t1)
	fa, fm, fb := f(t0), f(mid), f(t1)
	// Quadratic vertex from three equally spaced samples.
	den := fa - 2*fm + fb
	t := mid
	if den > 0 {
		t = mid + (fa-fb)/(2*den)*(t1-t0)/2
	}
	t = num.Clamp(t, t0, t1)
	return math.Sqrt(math.Min(f(t), math.Min(fa, fb)))
}

// ScaleToDie converts wafer-level rotation and magnification errors into
// the equivalent D2W per-die errors (§IV-B): the marker alignment error at
// the reference edge, ε = α·R_ref (and E·R_ref), is an equipment property,
// so a chiplet aligned on its own markers at half-diagonal r_d sees
// α' = ε/r_d — larger errors for smaller chiplets. Translation is
// unchanged.
func (d Distortion) ScaleToDie(refRadius, dieHalfDiagonal float64) Distortion {
	if dieHalfDiagonal <= 0 {
		return d
	}
	scale := refRadius / dieHalfDiagonal
	return Distortion{
		TX:            d.TX,
		TY:            d.TY,
		Rotation:      d.Rotation * scale,
		Magnification: d.Magnification * scale,
	}
}

// PadPOS returns the possibility of survival of a single pad whose
// systematic overlay error is s, under a random error u ~ N(0, σ₁)
// (Eq. 1 shifted by s, the integrand of Eq. 7):
//
//	POS = P(−δ ≤ s + u ≤ δ) = ∫_{−δ−s}^{δ−s} N(0, σ₁²)(u) du
func PadPOS(s, delta, sigma1 float64) float64 {
	if delta <= 0 {
		return 0
	}
	return num.NormalInterval(-delta-s, delta-s, 0, sigma1)
}

// DiePOS returns the possibility of survival of a die with pad-array
// rectangle rect under distortion dist (Eq. 7): the random error is shared
// within the die, so the die survives as its worst pad does, and the worst
// pad is the one with the largest systematic error — attained at a corner
// of the (convex) pad-array region.
func DiePOS(dist Distortion, rect geom.Rect, delta, sigma1 float64) float64 {
	return PadPOS(dist.MaxOverRect(rect), delta, sigma1)
}

// PadPOS2D returns the pad possibility of survival under the 2-D random
// misalignment convention: u⃗ = (u₁, u₂) with independent N(0, σ₁²)
// components added to the systematic displacement of magnitude s, so the
// total misalignment is Rice-distributed and
// POS = P(|s⃗+u⃗| ≤ δ) = RiceCDF(δ; s, σ₁).
//
// The paper's Eq. 1 uses the scalar convention instead (DESIGN.md §2.1);
// this function prices that approximation analytically. The scalar form
// upper-bounds it: collapsing u⃗ to the s direction discards the
// tangential escape route.
func PadPOS2D(s, delta, sigma1 float64) float64 {
	if delta <= 0 {
		return 0
	}
	return num.RiceCDF(delta, s, sigma1)
}

// DiePOS2D is DiePOS under the 2-D random misalignment convention: the
// worst pad (corner of the convex pad-array region) evaluated through the
// Rice CDF.
func DiePOS2D(dist Distortion, rect geom.Rect, delta, sigma1 float64) float64 {
	return PadPOS2D(dist.MaxOverRect(rect), delta, sigma1)
}

// DiePOSExact returns the exact possibility of survival of a die under a
// shared scalar random error: the die survives iff u lands in
// [−δ−s_min, δ−s_max], the intersection of every pad's survival window.
// Eq. 7's min-over-pads form keeps only the s_max side (its lower limit is
// −δ−s_max instead of −δ−s_min), so it upper-bounds this value; the gap is
// O(Φ(−δ/σ₁)) and vanishes for δ ≫ σ₁. Exposed for the approximation
// study the paper lists as future work.
func DiePOSExact(dist Distortion, rect geom.Rect, delta, sigma1 float64) float64 {
	if delta <= 0 {
		return 0
	}
	sMax := dist.MaxOverRect(rect)
	sMin := dist.MinOverRect(rect)
	return num.NormalInterval(-delta-sMin, delta-sMax, 0, sigma1)
}

// Model bundles the overlay parameters into an evaluable yield model.
type Model struct {
	Pads PadGeometry
	// Dist is the wafer-level systematic distortion.
	Dist Distortion
	// Sigma1 is the standard deviation σ₁ of the random overlay error (m).
	Sigma1 float64
}

// Delta returns the survivable-misalignment bound δ for the model's pads.
func (m Model) Delta() float64 { return m.Pads.MaxMisalignment() }

// WaferYieldW2W returns Y_ovl,W2W (Eq. 8): the average die POS across all M
// dies of the wafer layout, with each die's pad array evaluated against the
// wafer-level distortion field.
func (m Model) WaferYieldW2W(layout wafer.Layout) float64 {
	dies := layout.Dies()
	if len(dies) == 0 {
		return 0
	}
	pads := wafer.PadArrayFor(layout.DieWidth, layout.DieHeight, m.Pads.Pitch)
	delta := m.Delta()
	var sum float64
	for _, die := range dies {
		rect := pads.PadArrayRectOn(die)
		sum += DiePOS(m.Dist, rect, delta, m.Sigma1)
	}
	return sum / float64(len(dies))
}

// DieYieldD2W returns Y_ovl,D2W (Eq. 23) for a single chiplet bonded
// die-to-wafer. The die aligns on its own markers, so the wafer-level
// rotation and magnification are rescaled by the reference-radius to
// half-diagonal ratio, and the distortion field is evaluated in die-local
// coordinates centered on the die.
//
// refRadius is the radius at which the distortion's rotation/magnification
// were characterized (the wafer radius for Table I numbers).
func (m Model) DieYieldD2W(dieW, dieH, refRadius float64) float64 {
	pads := wafer.PadArrayFor(dieW, dieH, m.Pads.Pitch)
	dist := m.Dist.ScaleToDie(refRadius, wafer.HalfDiagonal(dieW, dieH))
	return DiePOS(dist, pads.Rect, m.Delta(), m.Sigma1)
}
