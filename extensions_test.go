package yap

import (
	"math"
	"strings"
	"testing"
)

// TestFacadeExtensionsWired exercises every extension wrapper end to end so
// the public API surface stays covered: each must return the same values
// as the internal implementation it fronts (spot-checked by invariants).
func TestFacadeExtensionsWired(t *testing.T) {
	base := Baseline()

	// Params I/O.
	p, err := ReadParams(strings.NewReader(`{"Warpage": 2e-5}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Warpage != 2e-5 {
		t.Errorf("ReadParams warpage = %g", p.Warpage)
	}
	if _, err := LoadParams("/nonexistent.json"); err == nil {
		t.Error("LoadParams accepted missing file")
	}

	// Design rules.
	d, err := MaxDefectDensity(DesignW2W, base, 0.9, 1, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 1 || d >= 1e4 {
		t.Errorf("MaxDefectDensity = %g, expected interior", d)
	}
	clean := WithDefectDensity(WithPitch(base, 2e-6), 100)
	r, err := MaxRecess(DesignW2W, clean, 0.9, 6e-9, 14e-9)
	if err != nil {
		t.Fatal(err)
	}
	if r <= 6e-9 || r >= 14e-9 {
		t.Errorf("MaxRecess = %g", r)
	}
	fineClean := WithDefectDensity(WithPitch(base, 1.5e-6), 100)
	b, err := MaxWarpage(DesignD2W, fineClean, 0.8, 1e-6, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if b <= 1e-6 || b >= 1e-4 {
		t.Errorf("MaxWarpage = %g", b)
	}

	// Assembly.
	cfg := AssemblyConfig{
		Bonding:      base,
		Process:      ChipletProcess{DefectDensity: 2e4},
		SystemArea:   1000e-6,
		KnownGoodDie: true,
	}
	ar, err := EvaluateAssemblyD2W(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ar.SystemYield <= 0 || ar.SystemYield > 1 {
		t.Errorf("assembly system yield = %g", ar.SystemYield)
	}
	aw, err := EvaluateAssemblyW2W(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if aw.SystemYield >= ar.SystemYield {
		t.Error("untested W2W stack should lose to KGD D2W at high D0")
	}
	cost, err := YieldedCostD2W(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Errorf("yielded cost = %g", cost)
	}
	areas := []float64{10e-6, 50e-6, 100e-6}
	bestA, bestC, err := CheapestChipletArea(cfg, areas)
	if err != nil {
		t.Fatal(err)
	}
	if bestC <= 0 || (bestA != areas[0] && bestA != areas[1] && bestA != areas[2]) {
		t.Errorf("cheapest area = %g at cost %g", bestA, bestC)
	}

	// Repair.
	fp := WithDefectDensity(WithPitch(base, 1e-6), 100)
	rr, err := EvaluateRepairW2W(fp, RepairScheme{GroupSize: 64, Spares: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Repaired <= rr.Unrepaired {
		t.Error("repair did not improve recess yield")
	}
	rd, err := EvaluateRepairD2W(fp, RepairScheme{GroupSize: 64, Spares: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rd.Repaired <= rd.Unrepaired {
		t.Error("D2W repair did not improve recess yield")
	}
	spares, err := RequiredSpares(fp, 64, 8, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if spares != 1 {
		t.Errorf("required spares = %d, want 1", spares)
	}

	// Per-die map.
	dies, err := W2WDieYields(base)
	if err != nil {
		t.Fatal(err)
	}
	centers, yields := RadialProfile(dies, 5, base.WaferDiameter/2)
	if len(centers) == 0 || len(centers) != len(yields) {
		t.Errorf("radial profile: %d/%d points", len(centers), len(yields))
	}

	// TCB.
	tb, err := EvaluateTCB(DefaultTCB())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tb.Total-tb.Overlay*tb.Recess*tb.Defect) > 1e-12 {
		t.Error("TCB total not the product")
	}

	// Simulator facade error path.
	bad := base
	bad.DefectShape = 1
	if _, err := SimulateD2W(SimOptions{Params: bad, Dies: 10}); err == nil {
		t.Error("SimulateD2W accepted invalid params")
	}
	if _, err := GenerateVoidMap(bad, 1, 5); err == nil {
		t.Error("GenerateVoidMap accepted invalid params")
	}
}

// TestFacadeMinPitchAgainstInternal guards the thin wrappers against
// argument-order mistakes: the façade must agree with a direct evaluation.
func TestFacadeMinPitchAgainstInternal(t *testing.T) {
	base := Baseline()
	pitch, err := MinPitch(DesignW2W, base, 0.7, 0.5e-6, 10e-6)
	if err != nil {
		t.Fatal(err)
	}
	at, err := EvaluateW2W(WithPitch(base, pitch))
	if err != nil {
		t.Fatal(err)
	}
	if at.Total < 0.7 {
		t.Errorf("yield at façade MinPitch = %g < target", at.Total)
	}
	below, err := EvaluateW2W(WithPitch(base, pitch*0.93))
	if err != nil {
		t.Fatal(err)
	}
	if below.Total >= 0.7 {
		t.Errorf("yield below MinPitch still meets target: %g", below.Total)
	}
}
