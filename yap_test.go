package yap

import (
	"math"
	"testing"
)

// TestPublicAPIBaseline exercises the package-level façade end to end: the
// analytic model, the simulator and the system yield must agree with each
// other and with the paper's baseline regime.
func TestPublicAPIBaseline(t *testing.T) {
	p := Baseline()

	w2w, err := EvaluateW2W(p)
	if err != nil {
		t.Fatal(err)
	}
	d2w, err := EvaluateD2W(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w2w.Total-0.81) > 0.02 {
		t.Errorf("baseline W2W yield = %g, want ≈ 0.81", w2w.Total)
	}
	if math.Abs(d2w.Total-0.89) > 0.02 {
		t.Errorf("baseline D2W yield = %g, want ≈ 0.89", d2w.Total)
	}

	res, err := SimulateW2W(SimOptions{Params: p, Wafers: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Yield-w2w.Total) > 0.05 {
		t.Errorf("sim %g vs model %g", res.Yield, w2w.Total)
	}
	if res.YieldLo > w2w.Total+0.05 || res.YieldHi < w2w.Total-0.05 {
		t.Errorf("model %g far outside sim CI [%g, %g]", w2w.Total, res.YieldLo, res.YieldHi)
	}

	resd, err := SimulateD2W(SimOptions{Params: p, Dies: 10000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resd.Yield-d2w.Total) > 0.03 {
		t.Errorf("D2W sim %g vs model %g", resd.Yield, d2w.Total)
	}

	ySys, n, err := SystemYield(p, 1000e-6)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("chiplets = %d, want 10", n)
	}
	if want := math.Pow(d2w.Total, 10); math.Abs(ySys-want) > 1e-12 {
		t.Errorf("Y_sys = %g, want %g", ySys, want)
	}
}

func TestPublicAPIWithHelpers(t *testing.T) {
	p := WithPitch(Baseline(), 1e-6)
	if p.Pitch != 1e-6 || p.BottomPadDiameter != 0.5e-6 {
		t.Errorf("WithPitch sizing rule broken: %g, %g", p.Pitch, p.BottomPadDiameter)
	}
	p = WithDieArea(p, 50e-6)
	if math.Abs(p.DieWidth*p.DieHeight-50e-6) > 1e-12 {
		t.Errorf("WithDieArea = %g", p.DieWidth*p.DieHeight)
	}
	p = WithDefectDensity(p, 100)
	if p.DefectDensity != 100 {
		t.Errorf("WithDefectDensity = %g", p.DefectDensity)
	}
}

func TestPublicAPIVoidMap(t *testing.T) {
	m, err := GenerateVoidMap(Baseline(), 3, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Voids) != 25 {
		t.Errorf("voids = %d", len(m.Voids))
	}
	if len(m.Dies) == 0 {
		t.Error("void map carries no dies")
	}
}

// TestPaperHeadlineShapes asserts the qualitative results the paper's
// evaluation section reports, all through the public API.
func TestPaperHeadlineShapes(t *testing.T) {
	// 1. At relaxed pitch (6 µm) bonding yield is defect-limited (§IV-A).
	w, err := EvaluateW2W(Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if w.Limiter() != "defect" {
		t.Errorf("6 µm W2W limiter = %s, want defect", w.Limiter())
	}

	// 2. W2W is more particle-sensitive than D2W (void tails, §IV-A).
	d, err := EvaluateD2W(Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if d.Defect <= w.Defect {
		t.Errorf("defect: D2W %g should beat W2W %g", d.Defect, w.Defect)
	}

	// 3. A 10× defect-density improvement gives near-perfect defect yield
	// for both styles at all chiplet sizes (§IV-A).
	for _, mm2 := range []float64{10, 50, 100} {
		clean := WithDefectDensity(WithDieArea(Baseline(), mm2*1e-6), 100) // 0.01 cm⁻²
		cw, err := EvaluateW2W(clean)
		if err != nil {
			t.Fatal(err)
		}
		cd, err := EvaluateD2W(clean)
		if err != nil {
			t.Fatal(err)
		}
		if cw.Defect < 0.97 || cd.Defect < 0.97 {
			t.Errorf("10x cleaner at %g mm²: Y_df W2W=%g D2W=%g, want ≥0.97",
				mm2, cw.Defect, cd.Defect)
		}
	}

	// 4. Pitch 6 → 1 µm: yield decreases for both, more for D2W (§IV-B).
	fine := WithPitch(Baseline(), 1e-6)
	fw, err := EvaluateW2W(fine)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := EvaluateD2W(fine)
	if err != nil {
		t.Fatal(err)
	}
	if fw.Total >= w.Total || fd.Total >= d.Total {
		t.Error("fine pitch should reduce both yields")
	}
	if (d.Total - fd.Total) <= (w.Total - fw.Total) {
		t.Errorf("pitch reduction should hit D2W (%g drop) harder than W2W (%g drop)",
			d.Total-fd.Total, w.Total-fw.Total)
	}
	// ...and W2W fares far better than D2W at fine pitch.
	if fw.Total <= fd.Total {
		t.Errorf("1 µm: W2W %g should beat D2W %g", fw.Total, fd.Total)
	}

	// 5. The W2W–D2W gap at fine pitch is even larger at low defect
	// density (§IV-B).
	fineClean := WithDefectDensity(fine, 100)
	cw, err := EvaluateW2W(fineClean)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := EvaluateD2W(fineClean)
	if err != nil {
		t.Fatal(err)
	}
	if (cw.Total - cd.Total) <= (fw.Total-fd.Total)*0.99 {
		t.Errorf("gap at 0.01 cm⁻² (%g) should be at least the 0.1 cm⁻² gap (%g)",
			cw.Total-cd.Total, fw.Total-fd.Total)
	}

	// 6. Y_sys rises with chiplet size even though Y_D2W falls (§IV-C).
	var prevSys float64 = -1
	var prevDie float64 = 2
	for _, mm2 := range []float64{10, 50, 100} {
		p := WithDieArea(Baseline(), mm2*1e-6)
		b, err := EvaluateD2W(p)
		if err != nil {
			t.Fatal(err)
		}
		ySys, _, err := SystemYield(p, 1000e-6)
		if err != nil {
			t.Fatal(err)
		}
		if b.Total >= prevDie {
			t.Errorf("Y_D2W should fall with chiplet size at %g mm²", mm2)
		}
		if ySys <= prevSys {
			t.Errorf("Y_sys should rise with chiplet size at %g mm²", mm2)
		}
		prevDie, prevSys = b.Total, ySys
	}
}
