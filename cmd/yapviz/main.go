// Command yapviz renders the void-formation wafer map of the paper's
// Fig. 6: one simulated W2W bonded wafer with its particles, main voids,
// bond-wave void tails and the dies they kill.
//
// Usage:
//
//	yapviz [-out fig6_voidmap.png] [-seed n] [-particles n]
//	       [-density cm-2] [-die-area mm2]
//
// particles = 0 draws the count from the process Poisson law.
package main

import (
	"flag"
	"fmt"
	"os"

	"yap/internal/core"
	"yap/internal/experiments"
	"yap/internal/units"
	"yap/internal/viz"
)

func main() {
	var (
		out       = flag.String("out", "fig6_voidmap.png", "output PNG path")
		seed      = flag.Uint64("seed", 6, "RNG seed")
		particles = flag.Int("particles", 0, "particle count (0 = Poisson draw at the process density)")
		density   = flag.Float64("density", 0, "defect density in cm^-2 (0 = baseline)")
		dieArea   = flag.Float64("die-area", 0, "square chiplet area in mm^2 (0 = baseline)")
		yieldMap  = flag.String("yield-map", "", "also render the per-die model yield map to this PNG")
		pitch     = flag.Float64("pitch", 0, "bonding pitch in um for the yield map (0 = baseline)")
	)
	flag.Parse()

	p := core.Baseline()
	if *density > 0 {
		p = p.WithDefectDensity(*density * units.PerSquareCentimeter)
	}
	if *dieArea > 0 {
		p = p.WithDieArea(*dieArea * units.SquareMillimeter)
	}

	m, err := experiments.Fig6VoidMap(p, *seed, *particles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "yapviz:", err)
		os.Exit(1)
	}
	title := fmt.Sprintf("Fig 6: void formation (%s)", units.FormatDensity(p.DefectDensity))
	if err := viz.WaferMap(m, title).SavePNG(*out); err != nil {
		fmt.Fprintln(os.Stderr, "yapviz:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d voids, %d/%d dies defect-killed\n",
		*out, len(m.Voids), m.KilledCount(), len(m.Dies))

	if *yieldMap != "" {
		q := p
		if *pitch > 0 {
			q = q.WithPitch(*pitch * units.Micrometer)
		}
		dies, err := q.W2WDieYields()
		if err != nil {
			fmt.Fprintln(os.Stderr, "yapviz:", err)
			os.Exit(1)
		}
		ymTitle := fmt.Sprintf("W2W per-die model yield (pitch %s)", units.FormatMeters(q.Pitch))
		if err := viz.YieldMap(dies, q.WaferRadius(), ymTitle).SavePNG(*yieldMap); err != nil {
			fmt.Fprintln(os.Stderr, "yapviz:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *yieldMap)
	}
}
