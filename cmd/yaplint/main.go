// Command yaplint runs the repository's custom static-analysis suite (see
// internal/lint) over the named packages and reports every violation as
//
//	file:line: [rule] message
//
// exiting non-zero when anything is found. It is stdlib-only and wired
// into `make lint` and CI, so every PR is gated on the repo's determinism,
// unit-safety, cancellation, error-wrapping, panic, lock-order,
// guarded-field, goroutine-lifetime and WAL-durability invariants.
//
// Usage:
//
//	yaplint [-rules] [-json] [packages...]   # default ./...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"yap/internal/lint"
)

// jsonFinding is the machine-readable rendering behind -json; the field
// set mirrors the GitHub problem matcher in .github/yaplint-matcher.json.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func main() {
	rules := flag.Bool("rules", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array instead of file:line text")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: yaplint [-rules] [-json] [packages...]\n\n"+
			"Runs YAP's repo-specific analyzers (default patterns: ./...).\n"+
			"Suppress a legitimate site with //yaplint:allow <rule>[, <rule>...] [reason].\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *rules {
		for _, a := range lint.All() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "yaplint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadPackages(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yaplint: %v\n", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, lint.All())
	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File: f.Pos.Filename,
				Line: f.Pos.Line,
				Col:  f.Pos.Column,
				Rule: f.Rule,
				Msg:  f.Msg,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "yaplint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "yaplint: %d finding(s)\n", n)
		os.Exit(1)
	}
}
