// Command yaplint runs the repository's custom static-analysis suite (see
// internal/lint) over the named packages and reports every violation as
//
//	file:line: [rule] message
//
// exiting non-zero when anything is found. It is stdlib-only and wired
// into `make lint` and CI, so every PR is gated on the repo's determinism,
// unit-safety, cancellation, error-wrapping and panic invariants.
//
// Usage:
//
//	yaplint [-rules] [packages...]   # default ./...
package main

import (
	"flag"
	"fmt"
	"os"

	"yap/internal/lint"
)

func main() {
	rules := flag.Bool("rules", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: yaplint [-rules] [packages...]\n\n"+
			"Runs YAP's repo-specific analyzers (default patterns: ./...).\n"+
			"Suppress a legitimate site with //yaplint:allow <rule> [reason].\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *rules {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "yaplint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadPackages(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yaplint: %v\n", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, lint.All())
	for _, f := range findings {
		fmt.Println(f)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "yaplint: %d finding(s)\n", n)
		os.Exit(1)
	}
}
