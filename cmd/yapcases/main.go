// Command yapcases regenerates the paper's case studies (Figs. 11 and 12):
// the per-mechanism yield breakdown of W2W and D2W hybrid bonding across
// the grid of defect density {0.01, 0.1} cm⁻², pitch {1, 6} µm and chiplet
// size {10, 50, 100} mm², plus the 1000 mm² system yield Y_sys.
//
// Usage:
//
//	yapcases [-mode w2w|d2w|both] [-png dir] [-csv dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"yap/internal/core"
	"yap/internal/experiments"
	"yap/internal/report"
	"yap/internal/viz"
)

func main() {
	var (
		mode   = flag.String("mode", "both", "w2w, d2w or both")
		pngDir = flag.String("png", "", "directory for bar-chart PNGs (empty = skip)")
		csvDir = flag.String("csv", "", "directory for CSV output (empty = skip)")
	)
	flag.Parse()

	results, err := experiments.RunCases(core.Baseline(), experiments.DefaultCaseGrid())
	if err != nil {
		fatal(err)
	}

	if *mode == "w2w" || *mode == "both" {
		fmt.Println("Fig 11 - W2W case studies (model):")
		fmt.Println(experiments.CaseTableW2W(results).Text())
	}
	if *mode == "d2w" || *mode == "both" {
		fmt.Println("Fig 12 - D2W case studies (model):")
		fmt.Println(experiments.CaseTableD2W(results).Text())
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
		if err := writeCSV(experiments.CaseTableW2W(results), filepath.Join(*csvDir, "fig11_w2w_cases.csv")); err != nil {
			fatal(err)
		}
		if err := writeCSV(experiments.CaseTableD2W(results), filepath.Join(*csvDir, "fig12_d2w_cases.csv")); err != nil {
			fatal(err)
		}
	}

	if *pngDir != "" {
		if err := os.MkdirAll(*pngDir, 0o755); err != nil {
			fatal(err)
		}
		series := []string{"Y_ovl", "Y_cr", "Y_df", "Y"}
		var w2wGroups, d2wGroups []viz.BarGroup
		for _, r := range results {
			label := r.Config.Label()
			w2wGroups = append(w2wGroups, viz.BarGroup{
				Label:  label,
				Values: []float64{r.W2W.Overlay, r.W2W.Recess, r.W2W.Defect, r.W2W.Total},
			})
			d2wGroups = append(d2wGroups, viz.BarGroup{
				Label:  label,
				Values: []float64{r.D2W.Overlay, r.D2W.Recess, r.D2W.Defect, r.D2W.Total},
			})
		}
		if err := viz.GroupedBarChart(w2wGroups, series, "Fig 11: W2W case studies (D/p/die)").
			SavePNG(filepath.Join(*pngDir, "fig11_w2w_cases.png")); err != nil {
			fatal(err)
		}
		if err := viz.GroupedBarChart(d2wGroups, series, "Fig 12: D2W case studies (D/p/die)").
			SavePNG(filepath.Join(*pngDir, "fig12_d2w_cases.png")); err != nil {
			fatal(err)
		}
		fmt.Println("charts written to", *pngDir)
	}
}

func writeCSV(t *report.Table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "yapcases:", err)
	os.Exit(1)
}
