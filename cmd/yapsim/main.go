// Command yapsim runs the YAP Monte-Carlo yield simulator (Fig. 4 workflow)
// and prints the per-mechanism and overall die yields with 95% confidence
// intervals, next to the analytic model for comparison.
//
// Usage:
//
//	yapsim [-mode w2w|d2w] [-wafers n] [-dies n] [-seed n] [-workers n]
//	       [-pitch um] [-die-area mm2] [-density cm-2]
//	       [-2d-misalignment] [-main-void] [-per-wafer-systematics]
package main

import (
	"flag"
	"fmt"
	"os"

	"yap/internal/core"
	"yap/internal/sim"
	"yap/internal/units"
)

func main() {
	var (
		mode    = flag.String("mode", "w2w", "bonding style: w2w or d2w")
		wafers  = flag.Int("wafers", 1000, "bonded-wafer samples for w2w (paper default 1000)")
		dies    = flag.Int("dies", 20000, "bonded-die samples for d2w (paper default 20000)")
		seed    = flag.Uint64("seed", 1, "RNG seed (equal seeds reproduce exactly)")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		pitch   = flag.Float64("pitch", 0, "bonding pitch in um (0 = baseline)")
		dieArea = flag.Float64("die-area", 0, "square chiplet area in mm^2 (0 = baseline)")
		density = flag.Float64("density", 0, "defect density in cm^-2 (0 = baseline)")

		twoD     = flag.Bool("2d-misalignment", false, "ablation: 2-D random overlay error instead of the paper's scalar convention")
		mainVoid = flag.Bool("main-void", false, "ablation: W2W dies also killed by the main-void disk, not just the tail")
		perWafer = flag.Bool("per-wafer-systematics", false, "extension: redraw Tx/Ty/rotation/warpage per wafer (W2W)")
	)
	flag.Parse()

	p := core.Baseline()
	if *pitch > 0 {
		p = p.WithPitch(*pitch * units.Micrometer)
	}
	if *dieArea > 0 {
		p = p.WithDieArea(*dieArea * units.SquareMillimeter)
	}
	if *density > 0 {
		p = p.WithDefectDensity(*density * units.PerSquareCentimeter)
	}

	opts := sim.Options{
		Params:                 p,
		Seed:                   *seed,
		Wafers:                 *wafers,
		Dies:                   *dies,
		Workers:                *workers,
		TwoDRandomMisalignment: *twoD,
		IncludeMainVoidW2W:     *mainVoid,
		PerWaferSystematics:    *perWafer,
	}

	var (
		res   sim.Result
		model core.Breakdown
		err   error
	)
	switch *mode {
	case "w2w":
		model, err = p.EvaluateW2W()
		if err == nil {
			res, err = sim.RunW2W(opts)
		}
	case "d2w":
		model, err = p.EvaluateD2W()
		if err == nil {
			res, err = sim.RunD2W(opts)
		}
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "yapsim:", err)
		os.Exit(1)
	}

	fmt.Println(res)
	fmt.Printf("model:   %v\n", model)
	fmt.Printf("|sim-model| total = %.4f\n", abs(res.Yield-model.Total))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
