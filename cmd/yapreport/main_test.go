package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGeneratesReport(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 3, 10, 300, 7, 2, 50); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "REPORT.md"))
	if err != nil {
		t.Fatal(err)
	}
	md := string(data)
	for _, frag := range []string{
		"# YAP evaluation report",
		"Table I — baseline parameters",
		"Baseline model evaluation",
		"Fig. 6 — void formation",
		"Figs. 8a / 9a",
		"model vs simulation",
		"case studies",
		"Runtime",
		"Extensions",
		"Interconnect repair",
		"TCB at 40 µm",
	} {
		if !strings.Contains(md, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
	// The figures referenced by the markdown must exist.
	for _, png := range []string{
		"fig6_voidmap.png", "fig8a.png", "fig9a.png",
		"corr_w2w_total.png", "corr_d2w_total.png",
	} {
		if _, err := os.Stat(filepath.Join(dir, png)); err != nil {
			t.Errorf("missing figure %s: %v", png, err)
		}
	}
}

func TestRunBadDirectory(t *testing.T) {
	if err := run("/dev/null/report", 2, 5, 100, 1, 2, 50); err == nil {
		t.Error("expected error for unwritable directory")
	}
}
