// Command yapdesign inverts the YAP yield model into assembly design
// rules: given a target bonding yield, it reports the finest usable pitch,
// the dirtiest acceptable particle environment, the deepest tolerable mean
// Cu recess and the largest tolerable bonded-wafer warpage — for W2W and
// D2W — plus a pitch × defect-density process-window map.
//
// Usage:
//
//	yapdesign [-target 0.9] [-mode w2w|d2w|both] [-window]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"yap/internal/core"
	"yap/internal/design"
	"yap/internal/report"
	"yap/internal/units"
	"yap/internal/viz"
)

func main() {
	var (
		target    = flag.Float64("target", 0.9, "target bonding yield")
		mode      = flag.String("mode", "both", "w2w, d2w or both")
		window    = flag.Bool("window", false, "also print the pitch x density process-window map")
		windowPNG = flag.String("window-png", "", "render the process window as a heatmap PNG")
	)
	flag.Parse()

	if *target <= 0 || *target >= 1 {
		fmt.Fprintln(os.Stderr, "yapdesign: target must be in (0, 1)")
		os.Exit(1)
	}

	modes := []design.Mode{design.W2W, design.D2W}
	switch *mode {
	case "w2w":
		modes = modes[:1]
	case "d2w":
		modes = modes[1:]
	case "both":
	default:
		fmt.Fprintf(os.Stderr, "yapdesign: unknown mode %q\n", *mode)
		os.Exit(1)
	}

	base := core.Baseline()
	fmt.Printf("Design rules for target bonding yield >= %.2f (Table I process otherwise):\n\n", *target)
	t := report.NewTable("Rule", "Mode", "Value", "Note")
	for _, m := range modes {
		addRule(t, "finest pitch", m, func() (string, error) {
			p, err := design.MinPitch(m, base, *target, 0.4*units.Micrometer, 12*units.Micrometer)
			return units.FormatMeters(p), err
		})
		addRule(t, "max defect density", m, func() (string, error) {
			d, err := design.MaxDefectDensity(m, base, *target,
				0.0005*units.PerSquareCentimeter, 2*units.PerSquareCentimeter)
			return units.FormatDensity(d), err
		})
		addRule(t, "max mean recess", m, func() (string, error) {
			r, err := design.MaxRecess(m, base.WithPitch(2*units.Micrometer).WithDefectDensity(0.01*units.PerSquareCentimeter),
				*target, 6*units.Nanometer, 14*units.Nanometer)
			return units.FormatMeters(r) + " (at 2 um pitch, 0.01 cm^-2)", err
		})
		addRule(t, "max warpage", m, func() (string, error) {
			b, err := design.MaxWarpage(m, base.WithPitch(1.5*units.Micrometer).WithDefectDensity(0.01*units.PerSquareCentimeter),
				*target, 1*units.Micrometer, 100*units.Micrometer)
			return units.FormatMeters(b) + " (at 1.5 um pitch, 0.01 cm^-2)", err
		})
	}
	fmt.Println(t.Text())

	if *window || *windowPNG != "" {
		w := computeWindow(base)
		if *window {
			printWindow(w, *target)
		}
		if *windowPNG != "" {
			xt := make([]string, len(w.XValues))
			for i, x := range w.XValues {
				xt[i] = fmt.Sprintf("%.1f", x/units.Micrometer)
			}
			yt := make([]string, len(w.YValues))
			for j, y := range w.YValues {
				yt[j] = fmt.Sprintf("%.3f", y/units.PerSquareCentimeter)
			}
			img := viz.Heatmap(w.Yield, xt, yt,
				fmt.Sprintf("W2W process window (outline: Y >= %.2f)", *target),
				"pitch (um)", "D_t (cm^-2)", *target)
			if err := img.SavePNG(*windowPNG); err != nil {
				fmt.Fprintln(os.Stderr, "yapdesign:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", *windowPNG)
		}
	}
}

func computeWindow(base core.Params) *design.Window {
	w, err := design.ProcessWindow(design.W2W, base,
		design.Axis{Lo: 1 * units.Micrometer, Hi: 10 * units.Micrometer, Steps: 10,
			Apply: func(p core.Params, v float64) core.Params { return p.WithPitch(v) }},
		design.Axis{Lo: 0.01 * units.PerSquareCentimeter, Hi: 1 * units.PerSquareCentimeter, Steps: 8, Log: true,
			Apply: func(p core.Params, v float64) core.Params { return p.WithDefectDensity(v) }},
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "yapdesign:", err)
		os.Exit(1)
	}
	return w
}

func addRule(t *report.Table, name string, m design.Mode, f func() (string, error)) {
	v, err := f()
	note := ""
	switch {
	case errors.Is(err, design.ErrInfeasible):
		v, note = "-", "infeasible in searched range"
	case errors.Is(err, design.ErrTrivial):
		note = "not binding (met across range)"
	case err != nil:
		v, note = "-", err.Error()
	}
	t.AddRow(name, m.String(), v, note)
}

func printWindow(w *design.Window, target float64) {
	fmt.Printf("W2W process window (rows: defect density, cols: pitch; '#' = Y >= %.2f):\n\n", target)
	fmt.Print("            ")
	for _, x := range w.XValues {
		fmt.Printf("%5.1f ", x/units.Micrometer)
	}
	fmt.Println("um")
	for j := len(w.YValues) - 1; j >= 0; j-- {
		fmt.Printf("%7.3f/cm2 ", w.YValues[j]/units.PerSquareCentimeter)
		for i := range w.XValues {
			mark := "  .  "
			if w.Yield[j][i] >= target {
				mark = "  #  "
			}
			fmt.Print(mark, " "[:1])
		}
		fmt.Println()
	}
	fmt.Printf("\nfeasible fraction: %.0f%%\n", w.Feasible(target)*100)
}
