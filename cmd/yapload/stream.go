package main

// The convergence-streaming drill (-stream): a live watch over a durable
// job's SSE stream, with the connection deliberately dropped mid-run and
// resumed from the last event ID. The daemon runs in-process with a job
// store, every job slice paced by an injected jobs.run delay so the drop
// cannot race completion, and heartbeats tightened to exercise the
// keep-alive path. Invariants:
//
//   - stream events are well-formed: sequence numbers strictly increase,
//     completed counts never regress, and every running yield estimate is
//     exactly consistent with the raw tallies it rides with;
//   - a watch dropped mid-stream resumes losslessly: reconnecting with
//     the last seen sequence completes the watch, and the streamed final
//     result is bit-identical to what GET /v1/jobs/{id} reports;
//   - a job armed with epsilon stops early — done, not partial, with at
//     most half its sample cap spent and the CI half-width at or under
//     epsilon — and the stop is visible on /metrics
//     (yapserve_early_stops_total, yapserve_samples_saved_total);
//   - yapserve_stream_subscribers returns to zero once the watches end.
//
// Exits 1 when any invariant is violated.

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"reflect"
	"time"

	"yap/internal/client"
	"yap/internal/core"
	"yap/internal/faultinject"
	"yap/internal/jobs"
	"yap/internal/service"
)

var streamMode = flag.Bool("stream", false, "run the convergence-streaming drill instead of the load mix")

// streamDrillWafers paces phase 1: with the injected 25ms delay per
// 2-wafer slice the job runs ~750ms — a wide window to drop the watch
// after two checkpoints and resume long before completion.
const (
	streamDrillWafers     = 60
	streamDrillEpsilon    = 1e-3
	streamDrillSampleCap  = 20000
	streamDrillCheckpoint = 500
)

// runStreamDrill is the -stream entrypoint; returns the process exit code.
func runStreamDrill(logger *log.Logger, seed uint64) int {
	d := &drill{logger: logger}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	inj, err := faultinject.ParseSpec(fmt.Sprintf("seed=1,%s=1:delay:25ms", faultinject.HookJobsRun))
	if err != nil {
		logger.Fatalf("stream: fault spec: %v", err)
	}
	dir, err := os.MkdirTemp("", "yapload-stream-*")
	if err != nil {
		logger.Fatalf("stream: store dir: %v", err)
	}
	defer os.RemoveAll(dir) //nolint:errcheck
	jm, err := jobs.Open(jobs.Config{Dir: dir, SimWorkers: 2, Faults: inj, Logger: logger})
	if err != nil {
		logger.Fatalf("stream: opening job store: %v", err)
	}
	defer jm.Close() //nolint:errcheck
	base, shutdown, err := startStreamServer(jm, logger)
	if err != nil {
		logger.Fatalf("stream: starting server: %v", err)
	}
	defer shutdown()
	cli, err := client.New(client.Config{BaseURL: base, MaxAttempts: 4})
	if err != nil {
		logger.Fatalf("stream: client: %v", err)
	}

	// Phase 1: watch a paced job, drop the connection after two
	// checkpoint events, resume from the last sequence seen.
	sub, err := cli.SubmitJob(ctx, service.JobSubmitRequest{
		Seed: seed, Wafers: streamDrillWafers, Workers: 2, CheckpointEvery: jobsCheckpointEvery,
	})
	if err != nil {
		logger.Fatalf("stream: submit: %v", err)
	}
	logger.Printf("stream: submitted %s (%d wafers, checkpoint every %d)",
		sub.ID, streamDrillWafers, jobsCheckpointEvery)

	v := &streamValidator{d: d}
	watchCtx, dropWatch := context.WithCancel(ctx)
	defer dropWatch()
	checkpoints := 0
	_, err = cli.StreamJob(watchCtx, sub.ID, 0, func(ev *service.JobStreamEvent) error {
		v.observe(ev)
		if ev.Completed > 0 {
			checkpoints++
		}
		if checkpoints >= 2 {
			dropWatch() // the "dropped connection"
		}
		return nil
	})
	switch {
	case err == nil:
		d.violation("watch survived its canceled context; the drop landed after the job finished — widen the pacing")
	case !errors.Is(err, context.Canceled):
		d.violation("dropped watch surfaced %v, want a context.Canceled chain", err)
	}
	if v.last == nil || v.last.Completed >= streamDrillWafers {
		d.violation("drop landed outside the run (last event %+v)", v.last)
	}
	dropSeq, dropCompleted := 0, 0
	if v.last != nil {
		dropSeq, dropCompleted = v.last.Seq, v.last.Completed
	}
	logger.Printf("stream: dropped watch at seq %d (%d/%d wafers); resuming",
		dropSeq, dropCompleted, streamDrillWafers)

	final, err := cli.StreamJob(ctx, sub.ID, dropSeq, func(ev *service.JobStreamEvent) error {
		v.observe(ev)
		return nil
	})
	if err != nil {
		logger.Fatalf("stream: resumed watch: %v", err)
	}
	if final.State != "done" || final.Result == nil {
		d.violation("resumed watch ended %q (error %q), want done with result", final.State, final.Error)
	} else {
		job, err := cli.GetJob(ctx, sub.ID)
		if err != nil {
			logger.Fatalf("stream: GetJob: %v", err)
		}
		streamed, polled := *final.Result, *job.Result
		streamed.ElapsedMs, polled.ElapsedMs = 0, 0
		if !reflect.DeepEqual(streamed, polled) {
			d.violation("streamed final result diverges from GetJob:\n  streamed %+v\n  polled   %+v", streamed, polled)
		} else {
			logger.Printf("stream: streamed final bit-identical to GetJob: %d/%d dies, yield %.6f",
				streamed.Survived, streamed.Dies, streamed.Yield)
		}
	}

	// Phase 2: an epsilon-armed job must stop early, and the stop must be
	// visible in the daemon's metrics.
	easy := core.Baseline()
	easy.DefectDensity = 0
	easy.TranslationX, easy.TranslationY, easy.Rotation, easy.Warpage = 0, 0, 0, 0
	easy.PlacementTranslationSigma, easy.PlacementRotationSigma, easy.PlacementWarpageSigma = 0, 0, 0
	easy.RandomMisalignmentSigma = 0
	easy.RecessSigma = 0.5e-9
	rawEasy, err := json.Marshal(easy)
	if err != nil {
		logger.Fatalf("stream: encoding easy params: %v", err)
	}
	sub2, err := cli.SubmitJob(ctx, service.JobSubmitRequest{
		Mode: "d2w", Params: rawEasy, Seed: seed + 1, Dies: streamDrillSampleCap,
		Workers: 2, CheckpointEvery: streamDrillCheckpoint, Epsilon: streamDrillEpsilon,
	})
	if err != nil {
		logger.Fatalf("stream: submit early-stop job: %v", err)
	}
	final2, err := cli.StreamJob(ctx, sub2.ID, 0, nil)
	if err != nil {
		logger.Fatalf("stream: early-stop watch: %v", err)
	}
	switch {
	case final2.State != "done" || final2.Result == nil:
		d.violation("early-stop job ended %q (error %q), want done", final2.State, final2.Error)
	case !final2.StoppedEarly || !final2.Result.StoppedEarly:
		d.violation("early-stop job not flagged stopped_early: %+v", final2.Result)
	default:
		r := final2.Result
		if r.SamplesUsed <= 0 || r.SamplesUsed*2 > streamDrillSampleCap {
			d.violation("early stop used %d of %d samples, want at most half", r.SamplesUsed, streamDrillSampleCap)
		}
		if r.CIHalfWidth > streamDrillEpsilon {
			d.violation("early stop half-width %g > epsilon %g", r.CIHalfWidth, streamDrillEpsilon)
		}
		if r.Partial {
			d.violation("early-stopped job marked partial")
		}
		logger.Printf("stream: early stop at %d/%d samples (%.1fx fewer), half-width %.2g",
			r.SamplesUsed, streamDrillSampleCap,
			float64(streamDrillSampleCap)/float64(r.SamplesUsed), r.CIHalfWidth)

		if got := scrapeCounter(ctx, d, base, "yapserve_early_stops_total"); got < 1 {
			d.violation("yapserve_early_stops_total %v, want >= 1", got)
		}
		saved := float64(streamDrillSampleCap - r.SamplesUsed)
		if got := scrapeCounter(ctx, d, base, "yapserve_samples_saved_total"); got != saved {
			d.violation("yapserve_samples_saved_total %v, want %v", got, saved)
		}
	}
	if got := scrapeCounter(ctx, d, base, "yapserve_stream_subscribers"); got != 0 {
		d.violation("yapserve_stream_subscribers %v after all watches ended, want 0", got)
	}

	if len(d.violations) > 0 {
		for _, viol := range d.violations {
			fmt.Fprintln(os.Stderr, "yapload: VIOLATION:", viol)
		}
		return 1
	}
	fmt.Printf("yapload: stream drill: %d events validated, dropped at seq %d and resumed, early stop verified\n",
		v.events, dropSeq)
	fmt.Println("yapload: all streaming invariants held")
	return 0
}

// streamValidator applies the per-event invariants across both halves of
// a dropped-and-resumed watch: sequences strictly increase, completion
// never regresses, and estimates are consistent with their tallies.
type streamValidator struct {
	d      *drill
	last   *service.JobStreamEvent
	events int
}

func (v *streamValidator) observe(ev *service.JobStreamEvent) {
	v.events++
	if v.last != nil {
		if ev.Seq <= v.last.Seq {
			v.d.violation("stream seq %d after %d, want strictly increasing", ev.Seq, v.last.Seq)
		}
		if ev.Completed < v.last.Completed {
			v.d.violation("stream completed %d after %d, want non-decreasing", ev.Completed, v.last.Completed)
		}
	}
	if ev.Counts.Dies > 0 {
		if want := float64(ev.Counts.Survived) / float64(ev.Counts.Dies); ev.Yield != want {
			v.d.violation("event seq %d: yield %v inconsistent with tallies %d/%d",
				ev.Seq, ev.Yield, ev.Counts.Survived, ev.Counts.Dies)
		}
		if ev.YieldLo > ev.Yield || ev.Yield > ev.YieldHi {
			v.d.violation("event seq %d: yield %v outside [%v, %v]", ev.Seq, ev.Yield, ev.YieldLo, ev.YieldHi)
		}
	}
	if want := (ev.YieldHi - ev.YieldLo) / 2; ev.CIHalfWidth != want {
		v.d.violation("event seq %d: ci_halfwidth %v != (hi-lo)/2 = %v", ev.Seq, ev.CIHalfWidth, want)
	}
	copied := *ev
	v.last = &copied
}

// startStreamServer boots the in-process daemon for the drill: job store
// attached, fast heartbeats, no breaker.
func startStreamServer(jm *jobs.Manager, logger *log.Logger) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := service.New(service.Config{
		MaxConcurrentSims: 2,
		RequestTimeout:    30 * time.Second,
		BreakerThreshold:  -1,
		Jobs:              jm,
		StreamHeartbeat:   100 * time.Millisecond,
		Logger:            logger,
	})
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	go httpSrv.Serve(ln) //nolint:errcheck // closed by shutdown below
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)     //nolint:errcheck
		httpSrv.Shutdown(ctx) //nolint:errcheck
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}
