package main

// The fleet-cache drill (-cache): a fleet-wide deduplication exercise
// over real processes. The binary re-execs itself as a three-member
// yapserve fleet wired through -cache-peers (internal/fleetcache over
// real HTTP), sweeps the same P distinct parameter points across every
// member for several rounds of /v1/evaluate/batch, SIGKILLs one member
// mid-drill, and asserts the subsystem's headline invariants:
//
//   - fleet-wide deduplication: the total number of engine computations
//     summed over all members (the yapserve_fleetcache_computes_total
//     counter, plus the dead member's last pre-kill scrape) stays ≈ P —
//     NOT members × rounds × P, which is what per-daemon caches would
//     cost;
//   - bit-identity: a batch point's breakdown equals the same params
//     sent through /v1/evaluate on a DIFFERENT member, float for float;
//   - graceful degradation: after the kill, batches on the survivors
//     keep succeeding with zero per-point failures, and a fresh point
//     owned by the dead member computes locally rather than erroring.
//
// The drill runs with delay faults armed on the fleetcache.fetch hook so
// peer exchanges are exercised under latency, not just on loopback's
// happy path. Exits 1 when any invariant is violated.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"

	"yap/internal/client"
	"yap/internal/core"
	"yap/internal/faultinject"
	"yap/internal/fleetcache"
	"yap/internal/service"
)

var (
	cacheMode    = flag.Bool("cache", false, "run the fleet-cache deduplication drill instead of the load mix")
	cachePoints  = flag.Int("cache-points", 24, "distinct parameter points for the -cache drill")
	cacheRounds  = flag.Int("cache-rounds", 3, "batch rounds per member for the -cache drill")
	cacheServerX = flag.Bool("cache-server-exec", false, "internal: run as a -cache drill fleet member subprocess")
	cacheAddr    = flag.String("cache-exec-addr", "", "internal: pre-reserved listen address for the -cache member")
	cacheSelf    = flag.String("cache-exec-self", "", "internal: this member's advertised URL")
	cacheFleet   = flag.String("cache-exec-peers", "", "internal: comma-separated peer URLs")
)

// runCacheServer is the subprocess side: one fleet member on a
// pre-reserved loopback port, exactly as cmd/yapserve -cache-peers wires
// it. It never closes the cache — the parent SIGKILLs members to model
// crashes.
func runCacheServer(logger *log.Logger) {
	if *cacheAddr == "" || *cacheSelf == "" || *cacheFleet == "" {
		logger.Fatal("-cache-server-exec requires -cache-exec-addr, -cache-exec-self and -cache-exec-peers")
	}
	inj, err := faultinject.FromEnv()
	if err != nil {
		logger.Fatalf("cache member: invalid %s: %v", faultinject.EnvVar, err)
	}
	members := append(strings.Split(*cacheFleet, ","), *cacheSelf)
	fleet := fleetcache.New(fleetcache.Config{
		Self:      *cacheSelf,
		Members:   members,
		Transport: &client.CacheTransport{},
		Faults:    inj,
	})
	ln, err := net.Listen("tcp", *cacheAddr)
	if err != nil {
		logger.Fatalf("cache member: listen %s: %v", *cacheAddr, err)
	}
	srv := service.New(service.Config{
		RequestTimeout:   30 * time.Second,
		BreakerThreshold: -1,
		FleetCache:       fleet,
		Faults:           inj,
		Logger:           logger,
	})
	fmt.Printf("%shttp://%s\n", workerBanner, ln.Addr())
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatalf("cache member: serve: %v", err)
	}
}

// cachePoint is one drill point: the partial-override JSON the wire
// carries and the resolved params the parent predicts owners with.
type cachePoint struct {
	raw    string
	params core.Params
	hash   uint64
}

// cacheDrillPoints builds P distinct pitch points whose JSON resolves to
// exactly core.Baseline().WithPitch(pitch), so the parent can compute
// each point's canonical hash — and therefore its rendezvous owner —
// without asking the fleet.
func cacheDrillPoints(n int) []cachePoint {
	points := make([]cachePoint, n)
	for i := range points {
		pitch := float64(2+i) * 1e-6
		p := core.Baseline().WithPitch(pitch)
		points[i] = cachePoint{
			raw: fmt.Sprintf(`{"Pitch": %g, "BottomPadDiameter": %g, "TopPadDiameter": %g}`,
				p.Pitch, p.BottomPadDiameter, p.TopPadDiameter),
			params: p,
			hash:   p.CanonicalHash(),
		}
	}
	return points
}

// cacheComputesRe extracts the fleet compute counter from a /metrics
// scrape.
var cacheComputesRe = regexp.MustCompile(`(?m)^yapserve_fleetcache_computes_total (\d+)$`)

// cacheComputes scrapes one member's engine-computation count; -1 means
// unreachable.
func cacheComputes(ctx context.Context, base string) int64 {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return -1
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return -1
	}
	defer resp.Body.Close() //nolint:errcheck
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return -1
	}
	m := cacheComputesRe.FindSubmatch(body)
	if m == nil {
		return -1
	}
	n, err := strconv.ParseInt(string(m[1]), 10, 64)
	if err != nil {
		return -1
	}
	return n
}

// runCacheDrill is the parent side; returns the process exit code.
func runCacheDrill(logger *log.Logger, seed uint64) int {
	d := &drill{logger: logger}
	const members = 3
	const mode = "w2w"
	pointCount := *cachePoints
	rounds := *cacheRounds
	if pointCount < members || rounds < 2 {
		logger.Fatal("-cache needs at least 3 points and 2 rounds")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	addrs, err := reserveAddrs(members)
	if err != nil {
		logger.Fatalf("cache: reserving ports: %v", err)
	}
	urls := make([]string, members)
	for i, a := range addrs {
		urls[i] = "http://" + a
	}

	// Delay-mode faults on the peer-exchange hook: every fetch and push
	// eats latency, so the drill's dedup numbers survive slow peers, and
	// ONLY delay mode — an error fault here would legitimately force
	// local computes and blur the invariant under test.
	pace := fmt.Sprintf("%s=seed=%d,%s=0.5:delay:2ms", faultinject.EnvVar, seed, faultinject.HookFleetFetch)
	procs := make([]*workerProc, members)
	for i := range procs {
		peers := make([]string, 0, members-1)
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		procs[i], err = startSubprocess([]string{pace}, "-cache-server-exec",
			"-cache-exec-addr", addrs[i], "-cache-exec-self", urls[i],
			"-cache-exec-peers", strings.Join(peers, ","))
		if err != nil {
			logger.Fatalf("cache: starting member %d: %v", i, err)
		}
		defer procs[i].kill()
		logger.Printf("cache: member %d pid %d up at %s", i, procs[i].cmd.Process.Pid, urls[i])
	}

	points := cacheDrillPoints(pointCount)
	rawPoints := make([]string, len(points))
	for i, pt := range points {
		rawPoints[i] = pt.raw
	}
	batchBody := service.BatchEvaluateRequest{Mode: mode}
	for _, raw := range rawPoints {
		batchBody.Points = append(batchBody.Points, []byte(raw))
	}

	clients := make([]*client.Client, members)
	for i := range clients {
		if clients[i], err = client.New(client.Config{BaseURL: urls[i], MaxAttempts: 4}); err != nil {
			logger.Fatalf("cache: client: %v", err)
		}
	}

	sendBatch := func(member int) *service.BatchEvaluateResponse {
		resp, err := clients[member].EvaluateBatch(ctx, batchBody)
		if err != nil {
			d.violation("batch on member %d failed outright: %v", member, err)
			return nil
		}
		if resp.Failed != 0 {
			for _, pt := range resp.Points {
				if pt.Error != "" {
					d.violation("member %d point %d: %s", member, pt.Index, pt.Error)
				}
			}
		}
		return resp
	}

	// Round 1 on member 0: every point computes somewhere in the fleet
	// exactly once (peer fetch finds only cold owners). Then wait for the
	// asynchronous owner-warming pushes to land so later rounds are
	// deterministic: every point is queryable on its owner.
	first := sendBatch(0)
	if first == nil {
		return d.cacheExit(0, 0)
	}
	logger.Printf("cache: round 1 on member 0: computed=%d peer_hits=%d coalesced=%d cache_hits=%d",
		first.Computed, first.PeerHits, first.Coalesced, first.CacheHits)
	for _, pt := range points {
		owner := fleetcache.Owner(urls, mode, pt.hash)
		oc := clients[0]
		for i, u := range urls {
			if u == owner {
				oc = clients[i]
			}
		}
		warmed := false
		for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
			if _, err := oc.GetCached(ctx, mode, pt.hash); err == nil {
				warmed = true
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if !warmed {
			d.violation("point %016x never reached its owner %s (push lost?)", pt.hash, owner)
		}
	}

	// Bit-identity spot check: the batch's breakdowns against individual
	// /v1/evaluate calls on a DIFFERENT member (peer-fetched or recomputed
	// there — either way the floats must match exactly).
	for _, i := range []int{0, len(points) / 2, len(points) - 1} {
		ev, err := clients[1].Evaluate(ctx, service.EvaluateRequest{Mode: mode, Params: []byte(points[i].raw)})
		if err != nil {
			d.violation("evaluate point %d on member 1: %v", i, err)
			continue
		}
		bp := first.Points[i]
		if bp.ParamsHash != ev.ParamsHash || bp.W2W == nil || ev.W2W == nil || *bp.W2W != *ev.W2W {
			d.violation("point %d diverges across members:\n  batch    %+v\n  evaluate %+v", i, bp.W2W, ev.W2W)
		}
	}

	// Remaining pre-kill rounds, round-robined across all members. With
	// owners warm these should be answered from caches, not computed.
	preKillRounds := rounds / 2
	for r := 0; r < preKillRounds; r++ {
		for m := 0; m < members; m++ {
			sendBatch(m)
		}
	}

	// SIGKILL the last member mid-drill, banking its compute counter
	// first (its contribution to the fleet-wide total).
	victim := members - 1
	deadComputes := cacheComputes(ctx, urls[victim])
	if deadComputes < 0 {
		d.violation("could not scrape member %d before the kill", victim)
		deadComputes = 0
	}
	logger.Printf("cache: SIGKILLing member %d (pid %d) with %d computes banked",
		victim, procs[victim].cmd.Process.Pid, deadComputes)
	procs[victim].kill()

	// Survivors keep answering batches: a dead peer must degrade to
	// cached or locally computed answers, never to request errors.
	for r := preKillRounds; r < rounds; r++ {
		for m := 0; m < members-1; m++ {
			if resp := sendBatch(m); resp != nil && resp.Failed != 0 {
				d.violation("round %d member %d: %d points failed after the kill", r, m, resp.Failed)
			}
		}
	}

	// A FRESH point owned by the dead member: the survivor's peer fetch
	// hits a dead owner, trips the breaker path, and must fall back to
	// local compute — an answer, not an error.
	fresh := freshDeadOwnedPoint(urls, urls[victim], mode, pointCount)
	freshComputed := false
	if fresh != nil {
		ev, err := clients[0].Evaluate(ctx, service.EvaluateRequest{Mode: mode, Params: []byte(fresh.raw)})
		switch {
		case err != nil:
			d.violation("fresh dead-owned point errored instead of degrading: %v", err)
		case ev.Cached:
			d.violation("fresh dead-owned point reported cached; nothing could have cached it")
		default:
			freshComputed = true
			logger.Printf("cache: fresh point owned by dead member computed locally (total %.6f)", ev.W2W.Total)
		}
	} else {
		logger.Print("cache: no fresh point hashed to the dead member; skipping the degradation probe")
	}

	// The headline invariant: total engine computations across the fleet
	// ≈ distinct points. Slack: keys owned by the dead member may be
	// recomputed once per survivor after eviction or loss, so allow
	// 2 × |dead-owned points|, plus the deliberate fresh compute.
	total := deadComputes
	for m := 0; m < members-1; m++ {
		c := cacheComputes(ctx, urls[m])
		if c < 0 {
			d.violation("could not scrape member %d after the drill", m)
			continue
		}
		total += c
	}
	deadOwned := 0
	for _, pt := range points {
		if fleetcache.Owner(urls, mode, pt.hash) == urls[victim] {
			deadOwned++
		}
	}
	budget := int64(pointCount + 2*deadOwned)
	if freshComputed {
		budget++
	}
	naive := int64(members * rounds * pointCount)
	if total > budget {
		d.violation("fleet computed %d times for %d distinct points (budget %d with %d dead-owned; naive per-daemon caching would cost %d)",
			total, pointCount, budget, deadOwned, naive)
	}
	fmt.Printf("yapload: cache drill: %d members × %d rounds × %d points ⇒ %d fleet-wide computations (budget %d, naive %d)\n",
		members, rounds, pointCount, total, budget, naive)
	return d.cacheExit(total, naive)
}

// freshDeadOwnedPoint scans pitches beyond the drill set for one whose
// rendezvous owner is the dead member; nil if none found in 64 tries.
func freshDeadOwnedPoint(urls []string, dead, mode string, startIdx int) *cachePoint {
	for i := startIdx; i < startIdx+64; i++ {
		pitch := float64(2+i) * 1e-6
		p := core.Baseline().WithPitch(pitch)
		if fleetcache.Owner(urls, mode, p.CanonicalHash()) == dead {
			return &cachePoint{
				raw: fmt.Sprintf(`{"Pitch": %g, "BottomPadDiameter": %g, "TopPadDiameter": %g}`,
					p.Pitch, p.BottomPadDiameter, p.TopPadDiameter),
				params: p,
				hash:   p.CanonicalHash(),
			}
		}
	}
	return nil
}

// cacheExit prints collected violations and maps them onto an exit code.
func (d *drill) cacheExit(total, naive int64) int {
	if len(d.violations) > 0 {
		for _, v := range d.violations {
			fmt.Fprintln(os.Stderr, "yapload: VIOLATION:", v)
		}
		return 1
	}
	fmt.Printf("yapload: all fleet-cache invariants held (%d computations vs %d naive)\n", total, naive)
	return 0
}
