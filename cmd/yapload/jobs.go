package main

// The durable-jobs drill (-jobs): a true crash-recovery exercise over
// real processes. The binary re-execs itself as a yapserve-equivalent
// daemon with a durable job store, submits one Monte-Carlo job paced by
// an injected jobs.run delay, SIGKILLs the daemon after the job has
// durably checkpointed but long before it finishes, restarts a fresh
// daemon over the same store, and asserts the subsystem's headline
// invariants:
//
//   - the restarted daemon resumes the job from its last durable
//     checkpoint (resumes == 1, visible both on the job and as
//     yapserve_jobs_resumed_total on /metrics);
//   - the resumed job's final result is bit-identical to an
//     uninterrupted single-process run of the same spec — the crash is
//     invisible in the tallies;
//   - the kill provably interrupted real work: the job had completed
//     some but not all samples when the SIGKILL landed.
//
// Exits 1 when any invariant is violated.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"yap/internal/client"
	"yap/internal/core"
	"yap/internal/faultinject"
	"yap/internal/jobs"
	"yap/internal/service"
	"yap/internal/sim"
)

var (
	jobsMode    = flag.Bool("jobs", false, "run the durable-jobs crash-recovery drill instead of the load mix")
	jobsWafers  = flag.Int("jobs-wafers", 120, "wafers for the -jobs drill job")
	jobsServerX = flag.Bool("jobs-server-exec", false, "internal: run as a -jobs drill daemon subprocess")
	jobsExecDir = flag.String("jobs-exec-dir", "", "internal: job store directory for the -jobs drill daemon")
)

// jobsCheckpointEvery paces the drill job: with the injected 25ms delay
// per slice, a 120-wafer job runs for >= 1.5s — a wide window to land
// the SIGKILL after the first durable checkpoint.
const jobsCheckpointEvery = 2

// runJobsServer is the subprocess side: a daemon with a durable job
// store on a kernel-assigned loopback port, announced on stdout. It
// deliberately never closes the manager — the parent SIGKILLs it to
// model a crash, and a clean shutdown would defeat the drill.
func runJobsServer(logger *log.Logger) {
	if *jobsExecDir == "" {
		logger.Fatal("-jobs-server-exec requires -jobs-exec-dir")
	}
	inj, err := faultinject.FromEnv()
	if err != nil {
		logger.Fatalf("jobs daemon: invalid %s: %v", faultinject.EnvVar, err)
	}
	jm, err := jobs.Open(jobs.Config{Dir: *jobsExecDir, SimWorkers: 2, Faults: inj, Logger: logger})
	if err != nil {
		logger.Fatalf("jobs daemon: opening store: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		logger.Fatalf("jobs daemon: listen: %v", err)
	}
	srv := service.New(service.Config{
		MaxConcurrentSims: 2,
		RequestTimeout:    30 * time.Second,
		BreakerThreshold:  -1,
		Faults:            inj,
		Jobs:              jm,
		Logger:            logger,
	})
	fmt.Printf("%shttp://%s\n", workerBanner, ln.Addr())
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatalf("jobs daemon: serve: %v", err)
	}
}

// runJobsDrill is the parent side; returns the process exit code.
func runJobsDrill(logger *log.Logger, seed uint64) int {
	d := &drill{logger: logger}
	wafers := *jobsWafers
	if wafers < 3*jobsCheckpointEvery {
		logger.Fatalf("-jobs-wafers must be at least %d so a kill can land between checkpoints", 3*jobsCheckpointEvery)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// The uninterrupted single-process reference every invariant is
	// measured against.
	base, err := sim.RunW2WContext(ctx, sim.Options{Params: core.Baseline(), Seed: seed, Wafers: wafers, Workers: 2})
	if err != nil {
		logger.Fatalf("jobs: baseline: %v", err)
	}

	dir, err := os.MkdirTemp("", "yapload-jobs-*")
	if err != nil {
		logger.Fatalf("jobs: store dir: %v", err)
	}
	defer os.RemoveAll(dir) //nolint:errcheck

	// Daemon #1: every job slice is delayed 25ms through the jobs.run
	// fault hook, pacing the job so the kill cannot race completion.
	pace := fmt.Sprintf("%s=seed=1,%s=1:delay:25ms", faultinject.EnvVar, faultinject.HookJobsRun)
	daemon, err := startSubprocess([]string{pace}, "-jobs-server-exec", "-jobs-exec-dir", dir)
	if err != nil {
		logger.Fatalf("jobs: starting daemon: %v", err)
	}
	defer daemon.kill()
	logger.Printf("jobs: daemon pid %d up at %s (paced)", daemon.cmd.Process.Pid, daemon.url)

	cli, err := client.New(client.Config{BaseURL: daemon.url, MaxAttempts: 3})
	if err != nil {
		logger.Fatalf("jobs: client: %v", err)
	}
	sub, err := cli.SubmitJob(ctx, service.JobSubmitRequest{
		Seed: seed, Wafers: wafers, Workers: 2, CheckpointEvery: jobsCheckpointEvery,
	})
	if err != nil {
		logger.Fatalf("jobs: submit: %v", err)
	}
	logger.Printf("jobs: submitted %s (%d wafers, checkpoint every %d)", sub.ID, wafers, jobsCheckpointEvery)

	// Wait for the first durable checkpoint, then SIGKILL mid-job.
	var atKill *service.JobResponse
	for atKill == nil {
		job, err := cli.GetJob(ctx, sub.ID)
		if err != nil {
			logger.Fatalf("jobs: polling before kill: %v", err)
		}
		switch {
		case job.State == "running" && job.Completed >= jobsCheckpointEvery:
			atKill = job
		case job.State == "pending" || job.State == "running":
			time.Sleep(5 * time.Millisecond)
		default:
			d.violation("job reached %q before the kill could land; the drill exercised nothing", job.State)
			return d.exit()
		}
	}
	logger.Printf("jobs: SIGKILLing daemon pid %d with %d/%d samples checkpointed",
		daemon.cmd.Process.Pid, atKill.Completed, wafers)
	daemon.kill()
	if atKill.Completed >= wafers {
		d.violation("kill landed after all %d samples completed; widen -jobs-wafers", wafers)
	}

	// Daemon #2 over the same store, unpaced: recovery replays the WAL
	// and resumes the job from its last durable checkpoint.
	daemon2, err := startSubprocess([]string{faultinject.EnvVar + "="}, "-jobs-server-exec", "-jobs-exec-dir", dir)
	if err != nil {
		logger.Fatalf("jobs: restarting daemon: %v", err)
	}
	defer daemon2.kill()
	logger.Printf("jobs: restarted daemon pid %d at %s", daemon2.cmd.Process.Pid, daemon2.url)

	cli2, err := client.New(client.Config{BaseURL: daemon2.url, MaxAttempts: 3})
	if err != nil {
		logger.Fatalf("jobs: client: %v", err)
	}
	done, err := cli2.WaitJob(ctx, sub.ID, 10*time.Millisecond)
	if err != nil {
		logger.Fatalf("jobs: waiting for resumed job: %v", err)
	}
	switch {
	case done.State != "done":
		d.violation("resumed job finished as %q (error %q), want done", done.State, done.Error)
	case done.Result == nil:
		d.violation("resumed job has no result")
	default:
		if done.Resumes != 1 {
			d.violation("resumed job reports %d resumes, want 1", done.Resumes)
		}
		r := done.Result
		if r.Yield != base.Yield || r.YieldLo != base.YieldLo || r.YieldHi != base.YieldHi ||
			r.Survived != base.Counts.Survived || r.Dies != base.Counts.Dies ||
			r.OverlayYield != base.OverlayYield || r.DefectYield != base.DefectYield ||
			r.RecessYield != base.RecessYield {
			d.violation("resumed result diverges from uninterrupted run:\n  resumed %+v\n  single  %+v", r, base)
		} else {
			logger.Printf("jobs: resumed result bit-identical to uninterrupted run: %d/%d dies, yield %.6f",
				r.Survived, r.Dies, r.Yield)
		}
	}
	if v := scrapeCounter(ctx, d, daemon2.url, "yapserve_jobs_resumed_total"); v < 1 {
		d.violation("restart not visible in /metrics: yapserve_jobs_resumed_total %v, want >= 1", v)
	}

	fmt.Printf("yapload: jobs drill: killed at %d/%d samples, resumed and finished\n", atKill.Completed, wafers)
	return d.exit()
}

// exit prints collected violations and maps them onto an exit code.
func (d *drill) exit() int {
	if len(d.violations) > 0 {
		for _, v := range d.violations {
			fmt.Fprintln(os.Stderr, "yapload: VIOLATION:", v)
		}
		return 1
	}
	fmt.Println("yapload: all durable-job invariants held")
	return 0
}
