// Command yapload is a chaos-capable load generator for yapserve: it
// drives a workload mix (analytic evaluates, Monte-Carlo simulates,
// sweeps, plus deliberately invalid requests) through the retrying
// client and asserts the resilience invariants on every outcome:
//
//   - every request is accounted for — success (possibly partial), a
//     typed error with a documented code, or bounded retry exhaustion;
//     nothing hangs and nothing returns an unclassifiable failure;
//   - deliberately invalid requests come back as typed 4xx, never 5xx;
//   - every full (non-partial) simulate with the same seed and sample
//     count reports the identical yield — determinism survives chaos;
//   - partial simulate responses satisfy completed < requested.
//
// With -target it loads an external server; without it, it spins up an
// in-process yapserve on a loopback port — armed with the -faults plan
// (or YAP_FAULTS) — so a single command is a full chaos drill:
//
//	yapload -n 500 -c 16 -faults 'seed=7,sim.*=0.05:error,service.*=0.1:error'
//
// With -dist it instead drills the distributed-simulation subsystem:
// it re-execs itself as -dist-workers worker processes, shards runs
// across them through internal/dist, and asserts bit-identity against
// single-node baselines plus recovery from a SIGKILLed worker (see
// dist.go for the full invariant list):
//
//	yapload -dist -dist-workers 3 -dist-faults 'seed=5,dist.dispatch=0.1:error'
//
// With -jobs it drills the durable asynchronous job subsystem: it
// re-execs itself as a daemon with a job store, SIGKILLs it after the
// submitted job has durably checkpointed, restarts it over the same
// store, and requires the resumed job to finish with a result
// bit-identical to an uninterrupted run (see jobs.go):
//
//	yapload -jobs -jobs-wafers 120
//
// With -stream it drills the live convergence stream: it watches a paced
// job over SSE, drops the connection mid-run, resumes from the last
// event ID, and requires the streamed final result to be bit-identical
// to the poll endpoint's — plus an epsilon-armed job that must stop
// early with the stop visible on /metrics (see stream.go):
//
//	yapload -stream
//
// With -ha it drills the replicated job control plane: it re-execs
// itself as a three-member replica cluster, submits a paced job through
// a follower (exercising the client's leader-following redirect),
// SIGKILLs the LEADER after the first durable checkpoint, and requires a
// surviving follower to finish the job with a bit-identical result —
// then kills a second member and requires quorumless submits to be
// refused (see ha.go):
//
//	yapload -ha -ha-wafers 120
//
// Exits 1 when any invariant is violated.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"yap/internal/client"
	"yap/internal/faultinject"
	"yap/internal/randx"
	"yap/internal/resilience"
	"yap/internal/service"
)

// knownErrorCodes are the documented ErrorDetail codes (types.go); any
// other code on the wire is an invariant violation.
var knownErrorCodes = map[string]bool{
	"method_not_allowed": true, "invalid_json": true, "invalid_params": true,
	"invalid_mode": true, "too_many_points": true, "body_too_large": true,
	"deadline_exceeded": true, "canceled": true, "overloaded": true,
	"internal": true, "not_found": true, "jobs_disabled": true,
	"job_terminal": true, "not_leader": true, "replica_disabled": true,
	"no_quorum": true, "cache_miss": true, "hash_mismatch": true,
}

// tally aggregates outcomes across workers.
type tally struct {
	mu         sync.Mutex
	ok         int
	partial    int
	typed      map[string]int
	exhausted  int
	violations []string
	// yields pins the deterministic full-run yield per simulate mode.
	yields map[string]float64
}

func (t *tally) violation(format string, args ...any) {
	t.mu.Lock()
	t.violations = append(t.violations, fmt.Sprintf(format, args...))
	t.mu.Unlock()
}

func main() {
	var (
		target   = flag.String("target", "", "server base URL; empty starts an in-process server on a loopback port")
		faults   = flag.String("faults", "", "fault-injection spec for the in-process server (default: $"+faultinject.EnvVar+")")
		n        = flag.Int("n", 200, "total requests")
		conc     = flag.Int("c", 8, "concurrent workers")
		seed     = flag.Uint64("seed", 1, "workload-mix seed")
		attempts = flag.Int("attempts", 6, "client retry attempts per request")
		wafers   = flag.Int("sim-wafers", 8, "wafers per W2W simulate")
		dies     = flag.Int("sim-dies", 800, "dies per D2W simulate")
		timeout  = flag.Duration("timeout", 2*time.Minute, "whole-run deadline")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "yapload: ", log.LstdFlags)

	if *distWorkerX {
		runDistWorker(logger)
		return
	}
	if *jobsServerX {
		runJobsServer(logger)
		return
	}
	if *haServerX {
		runHAServer(logger)
		return
	}
	if *cacheServerX {
		runCacheServer(logger)
		return
	}
	if *distMode {
		os.Exit(runDistDrill(logger, *seed, *wafers, *dies))
	}
	if *jobsMode {
		os.Exit(runJobsDrill(logger, *seed))
	}
	if *streamMode {
		os.Exit(runStreamDrill(logger, *seed))
	}
	if *haMode {
		os.Exit(runHADrill(logger, *seed))
	}
	if *cacheMode {
		os.Exit(runCacheDrill(logger, *seed))
	}

	base := *target
	var inj *faultinject.Injector
	if base == "" {
		var err error
		if *faults != "" {
			inj, err = faultinject.ParseSpec(*faults)
		} else {
			inj, err = faultinject.FromEnv()
		}
		if err != nil {
			logger.Fatalf("invalid fault spec: %v", err)
		}
		var shutdown func()
		base, shutdown, err = startLocalServer(inj, logger)
		if err != nil {
			logger.Fatalf("starting local server: %v", err)
		}
		defer shutdown()
	} else if *faults != "" {
		logger.Fatal("-faults only applies to the in-process server; arm the external one via its own YAP_FAULTS")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	t := &tally{typed: make(map[string]int), yields: make(map[string]float64)}
	perWorker := (*n + *conc - 1) / *conc
	var wg sync.WaitGroup
	issued := 0
	for w := 0; w < *conc && issued < *n; w++ {
		count := perWorker
		if issued+count > *n {
			count = *n - issued
		}
		first := issued
		issued += count
		wg.Add(1)
		go func(w, first, count int) {
			defer wg.Done()
			c, err := client.New(client.Config{
				BaseURL:     base,
				MaxAttempts: *attempts,
				Backoff:     resilience.Backoff{Base: 2 * time.Millisecond, Max: 250 * time.Millisecond, Seed: *seed + uint64(w)},
				Breaker:     resilience.NewBreaker(resilience.BreakerConfig{Threshold: 1 << 30}),
			})
			if err != nil {
				t.violation("worker %d: %v", w, err)
				return
			}
			rng := randx.Derive(*seed, uint64(w))
			for i := 0; i < count; i++ {
				runOne(ctx, c, t, rng, first+i, *wafers, *dies)
			}
		}(w, first, count)
	}
	wg.Wait()

	if ctx.Err() != nil {
		t.violation("run overran its %v deadline — some request hung", *timeout)
	}
	accounted := t.ok + t.partial + t.exhausted
	for _, cnt := range t.typed {
		accounted += cnt
	}
	if accounted != *n {
		t.violation("accounted %d of %d requests", accounted, *n)
	}

	fmt.Printf("yapload: %d requests -> %d ok, %d partial, %d exhausted, typed %v\n",
		*n, t.ok, t.partial, t.exhausted, t.typed)
	if inj != nil {
		fmt.Printf("yapload: fault activity: %s\n", inj.StatsString())
	}
	if len(t.violations) > 0 {
		for _, v := range t.violations {
			fmt.Fprintln(os.Stderr, "yapload: VIOLATION:", v)
		}
		os.Exit(1)
	}
	fmt.Println("yapload: all invariants held")
}

// startLocalServer boots an in-process yapserve on 127.0.0.1:0 and
// returns its base URL and a shutdown func.
func startLocalServer(inj *faultinject.Injector, logger *log.Logger) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := service.New(service.Config{
		MaxConcurrentSims: 2,
		MaxQueuedSims:     8,
		RequestTimeout:    5 * time.Second,
		RetryAfter:        20 * time.Millisecond,
		BreakerThreshold:  -1, // the load test wants to see raw failures, not breaker sheds
		Faults:            inj,
	})
	if inj != nil {
		logger.Printf("in-process server: fault injection ACTIVE: %s", inj)
	}
	logger.Printf("in-process server: resilience: %s", srv.ResilienceSummary())
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln) //nolint:errcheck // closed by shutdown below
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)     //nolint:errcheck
		httpSrv.Shutdown(ctx) //nolint:errcheck
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// runOne issues the n-th request from the workload mix and folds its
// outcome into the tally. Roughly: 5% deliberately invalid, then 55%
// evaluate / 30% simulate / 10% sweep.
func runOne(ctx context.Context, c *client.Client, t *tally, rng *randx.Source, n, wafers, dies int) {
	roll := rng.Float64()
	switch {
	case roll < 0.05:
		// Deliberately invalid: negative pitch must be a typed 4xx.
		_, err := c.Evaluate(ctx, service.EvaluateRequest{
			Params: []byte(`{"Pitch": -1}`),
		})
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Status < 400 || apiErr.Status >= 500 {
			t.violation("bad request %d not answered with a typed 4xx: %v", n, err)
			t.record(err)
			return
		}
		t.record(err)
	case roll < 0.60:
		_, err := c.Evaluate(ctx, service.EvaluateRequest{})
		t.record(err)
	case roll < 0.75:
		resp, err := c.Simulate(ctx, service.SimulateRequest{Mode: "w2w", Seed: 42, Wafers: wafers, Workers: 2})
		t.checkSimulate(resp, err, n)
	case roll < 0.90:
		resp, err := c.Simulate(ctx, service.SimulateRequest{Mode: "d2w", Seed: 42, Dies: dies, Workers: 2})
		t.checkSimulate(resp, err, n)
	default:
		_, err := c.Sweep(ctx, service.SweepRequest{Mode: "w2w", Points: []json.RawMessage{
			[]byte(`{}`), []byte(`{"Pitch": 3e-6}`), []byte(`{"Pitch": 4e-6}`),
		}})
		t.record(err)
	}
}

// checkSimulate applies the simulate-specific invariants before recording.
func (t *tally) checkSimulate(resp *service.SimulateResponse, err error, n int) {
	if err != nil {
		t.record(err)
		return
	}
	if resp.Partial {
		if resp.Completed <= 0 || resp.Completed >= resp.Requested {
			t.violation("request %d: partial with completed %d / requested %d", n, resp.Completed, resp.Requested)
		}
		t.mu.Lock()
		t.partial++
		t.mu.Unlock()
		return
	}
	t.record(nil)
	// Full runs with identical seed and sample count must agree exactly.
	t.mu.Lock()
	defer t.mu.Unlock()
	if prev, ok := t.yields[resp.Mode]; ok {
		if prev != resp.Yield {
			t.violations = append(t.violations,
				fmt.Sprintf("request %d: %s yield %v diverges from earlier %v under identical seed", n, resp.Mode, resp.Yield, prev))
		}
	} else {
		t.yields[resp.Mode] = resp.Yield
	}
}

// record classifies one outcome under the resolution invariant.
func (t *tally) record(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch {
	case err == nil:
		t.ok++
	default:
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			if !knownErrorCodes[apiErr.Code] {
				t.violations = append(t.violations, fmt.Sprintf("undocumented error code %q: %v", apiErr.Code, err))
			}
			if errors.Is(err, client.ErrAttemptsExhausted) {
				t.exhausted++
			} else {
				t.typed[apiErr.Code]++
			}
			return
		}
		if errors.Is(err, client.ErrAttemptsExhausted) {
			t.exhausted++
			return
		}
		t.violations = append(t.violations, fmt.Sprintf("unclassifiable outcome: %v", err))
		t.exhausted++
	}
}
