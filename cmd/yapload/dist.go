package main

// The distributed-simulation drill (-dist): a true multi-process
// topology — this binary re-execs itself as N worker daemons, points an
// in-process coordinator at them, and asserts the subsystem's load-bearing
// invariants end to end over real HTTP:
//
//   - bit-identity: every distributed run (W2W and D2W) merges to exactly
//     the sim.Result a single-node run produces for the same seed, and
//     repeated runs agree with each other — including while coordinator-
//     side dispatch faults (-dist-faults) are being injected;
//   - the /v1/simulate surface of a coordinator daemon reports the same
//     yields with distributed=true, and /metrics exposes the fleet
//     counters;
//   - worker death (-dist-kill, default on): after SIGKILLing one worker
//     mid-drill, runs still complete bit-identically through shard
//     reassignment, and the reassignment is observable in the stats.
//
// Exits 1 when any invariant is violated.

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"reflect"
	"regexp"
	"strconv"
	"time"

	"yap/internal/client"
	"yap/internal/core"
	"yap/internal/dist"
	"yap/internal/faultinject"
	"yap/internal/resilience"
	"yap/internal/service"
	"yap/internal/sim"
)

var (
	distMode    = flag.Bool("dist", false, "run the distributed-simulation drill instead of the load mix")
	distNum     = flag.Int("dist-workers", 3, "worker processes to spawn for the -dist drill")
	distKill    = flag.Bool("dist-kill", true, "SIGKILL one worker mid-drill and require recovery via reassignment")
	distFaults  = flag.String("dist-faults", "", "coordinator-side fault spec for the -dist drill (dist.* hooks)")
	distWorkerX = flag.Bool("dist-worker-exec", false, "internal: run as a -dist drill worker subprocess")
)

// workerBanner is the line a drill worker prints once it listens.
const workerBanner = "YAPLOAD_WORKER "

// runDistWorker is the subprocess side of the drill: a plain yapserve
// worker on a kernel-assigned loopback port, announced on stdout. It runs
// until the parent kills it — worker death is part of the drill.
func runDistWorker(logger *log.Logger) {
	inj, err := faultinject.FromEnv()
	if err != nil {
		logger.Fatalf("worker: invalid %s: %v", faultinject.EnvVar, err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		logger.Fatalf("worker: listen: %v", err)
	}
	srv := service.New(service.Config{
		MaxConcurrentSims: 2,
		RequestTimeout:    30 * time.Second,
		BreakerThreshold:  -1,
		Faults:            inj,
	})
	fmt.Printf("%shttp://%s\n", workerBanner, ln.Addr())
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatalf("worker: serve: %v", err)
	}
}

// workerProc is one spawned drill worker.
type workerProc struct {
	cmd *exec.Cmd
	url string
}

func (w *workerProc) kill() {
	if w.cmd.Process != nil {
		_ = w.cmd.Process.Kill()
		_ = w.cmd.Wait()
	}
}

// startDrillWorker re-execs this binary in worker mode and waits for its
// listen banner.
func startDrillWorker(logger *log.Logger) (*workerProc, error) {
	w, err := startSubprocess(nil, "-dist-worker-exec")
	if err == nil {
		logger.Printf("dist: worker pid %d up at %s", w.cmd.Process.Pid, w.url)
	}
	return w, err
}

// startSubprocess re-execs this binary with the given flags (plus any
// extra environment entries) and waits for its listen banner.
func startSubprocess(extraEnv []string, args ...string) (*workerProc, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe, args...)
	if len(extraEnv) > 0 {
		cmd.Env = append(os.Environ(), extraEnv...)
	}
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	urls := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if len(line) > len(workerBanner) && line[:len(workerBanner)] == workerBanner {
				urls <- line[len(workerBanner):]
				break
			}
		}
		// Keep draining so the child never blocks on a full pipe.
		_, _ = io.Copy(io.Discard, stdout)
	}()
	select {
	case u := <-urls:
		return &workerProc{cmd: cmd, url: u}, nil
	case <-time.After(15 * time.Second):
		_ = cmd.Process.Kill()
		return nil, errors.New("subprocess did not announce a listen address within 15s")
	}
}

// drill collects violations with the same contract as the load mix.
type drill struct {
	logger     *log.Logger
	violations []string
}

func (d *drill) violation(format string, args ...any) {
	d.violations = append(d.violations, fmt.Sprintf(format, args...))
	d.logger.Printf("VIOLATION: "+format, args...)
}

func stripElapsed(r sim.Result) sim.Result {
	r.Elapsed = 0
	return r
}

// runDistDrill is the parent side; returns the process exit code.
func runDistDrill(logger *log.Logger, seed uint64, wafers, dies int) int {
	d := &drill{logger: logger}
	if *distNum < 2 {
		logger.Fatal("-dist-workers must be at least 2 (reassignment needs a survivor)")
	}

	var inj *faultinject.Injector
	if *distFaults != "" {
		var err error
		if inj, err = faultinject.ParseSpec(*distFaults); err != nil {
			logger.Fatalf("invalid -dist-faults: %v", err)
		}
		logger.Printf("dist: coordinator fault injection ACTIVE: %s", inj)
	}

	workers := make([]*workerProc, 0, *distNum)
	defer func() {
		for _, w := range workers {
			w.kill()
		}
	}()
	urls := make([]string, 0, *distNum)
	for i := 0; i < *distNum; i++ {
		w, err := startDrillWorker(logger)
		if err != nil {
			logger.Fatalf("spawning worker %d: %v", i, err)
		}
		workers = append(workers, w)
		urls = append(urls, w.url)
	}

	coord, err := dist.New(dist.Config{
		Workers:           urls,
		HeartbeatInterval: 500 * time.Millisecond,
		DownBackoff:       10 * time.Millisecond,
		MaxShardAttempts:  8,
		Faults:            inj,
		Logger:            logger,
		ClientFactory: func(u string) (*client.Client, error) {
			return client.New(client.Config{
				BaseURL:     u,
				MaxAttempts: 2,
				Backoff:     resilience.Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
			})
		},
	})
	if err != nil {
		logger.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Single-node baselines the whole drill is measured against.
	w2wOpts := sim.Options{Params: core.Baseline(), Seed: seed, Wafers: wafers, Workers: 2}
	d2wOpts := sim.Options{Params: core.Baseline(), Seed: seed, Dies: dies, Workers: 2}
	w2wBase, err := sim.RunW2WContext(ctx, w2wOpts)
	if err != nil {
		logger.Fatalf("baseline w2w: %v", err)
	}
	d2wBase, err := sim.RunD2WContext(ctx, d2wOpts)
	if err != nil {
		logger.Fatalf("baseline d2w: %v", err)
	}

	check := func(label, mode string, opts sim.Options, want sim.Result) bool {
		got, info, err := coord.Simulate(ctx, mode, opts)
		if err != nil {
			d.violation("%s: distributed run failed: %v", label, err)
			return false
		}
		if !reflect.DeepEqual(stripElapsed(got), stripElapsed(want)) {
			d.violation("%s: distributed result diverges from single node:\n  dist   %+v\n  single %+v",
				label, stripElapsed(got), stripElapsed(want))
			return false
		}
		logger.Printf("dist: %s ok (%d shards, %d reassigned): %s", label, info.Shards, info.Reassigned, got)
		return true
	}

	// Phase 1: bit-identity, twice per mode for run-to-run reproducibility.
	check("w2w#1", "w2w", w2wOpts, w2wBase)
	check("w2w#2", "w2w", w2wOpts, w2wBase)
	check("d2w#1", "d2w", d2wOpts, d2wBase)
	check("d2w#2", "d2w", d2wOpts, d2wBase)

	// Phase 2: the same fleet behind a coordinator daemon's /v1/simulate,
	// asserted through the public HTTP surface plus /metrics.
	coordURL, coordShutdown, err := startCoordinatorServer(coord, logger)
	if err != nil {
		logger.Fatalf("coordinator server: %v", err)
	}
	defer coordShutdown()
	cli, err := client.New(client.Config{BaseURL: coordURL, MaxAttempts: 3})
	if err != nil {
		logger.Fatalf("coordinator client: %v", err)
	}
	resp, err := cli.Simulate(ctx, service.SimulateRequest{Mode: "w2w", Seed: seed, Wafers: wafers, Workers: 2})
	switch {
	case err != nil:
		d.violation("coordinator /v1/simulate failed: %v", err)
	case !resp.Distributed:
		d.violation("coordinator /v1/simulate did not report distributed=true")
	case resp.Yield != w2wBase.Yield || resp.Dies != w2wBase.Counts.Dies || resp.Survived != w2wBase.Counts.Survived:
		d.violation("coordinator /v1/simulate yield %v (%d/%d dies) != single-node %v (%d/%d)",
			resp.Yield, resp.Survived, resp.Dies, w2wBase.Yield, w2wBase.Counts.Survived, w2wBase.Counts.Dies)
	default:
		logger.Printf("dist: coordinator daemon ok (distributed=true, %d shards)", resp.Shards)
	}

	// Phase 3: kill one worker and require recovery through reassignment.
	if *distKill {
		before := coord.Stats().ShardsReassigned
		logger.Printf("dist: killing worker pid %d (%s)", workers[0].cmd.Process.Pid, workers[0].url)
		workers[0].kill()
		recovered := false
		for i := 0; i < 10 && ctx.Err() == nil; i++ {
			if !check(fmt.Sprintf("w2w-postkill#%d", i+1), "w2w", w2wOpts, w2wBase) {
				break
			}
			if coord.Stats().ShardsReassigned > before {
				recovered = true
				break
			}
		}
		if !recovered {
			d.violation("killed worker never caused an observed shard reassignment (stats %+v)", coord.Stats())
		} else {
			logger.Printf("dist: recovery ok — reassignments %d -> %d, fleet %d/%d up",
				before, coord.Stats().ShardsReassigned, coord.Stats().WorkersUp, coord.Stats().WorkersKnown)
		}
		if v := scrapeCounter(ctx, d, coordURL, "yapserve_dist_shards_reassigned_total"); v == 0 {
			d.violation("reassignments not visible in /metrics")
		}
	}

	fmt.Printf("yapload: dist drill: %d workers, stats %+v\n", *distNum, coord.Stats())
	if len(d.violations) > 0 {
		for _, v := range d.violations {
			fmt.Fprintln(os.Stderr, "yapload: VIOLATION:", v)
		}
		return 1
	}
	fmt.Println("yapload: all distributed invariants held")
	return 0
}

// startCoordinatorServer exposes the coordinator through a real yapserve
// daemon on a loopback port.
func startCoordinatorServer(coord *dist.Coordinator, logger *log.Logger) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := service.New(service.Config{
		MaxConcurrentSims: 2,
		RequestTimeout:    90 * time.Second,
		BreakerThreshold:  -1,
		Distributor:       coord,
		Logger:            logger,
	})
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	go httpSrv.Serve(ln) //nolint:errcheck // closed by shutdown below
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)     //nolint:errcheck
		httpSrv.Shutdown(ctx) //nolint:errcheck
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// scrapeCounter fetches /metrics and returns the value of the named
// un-labelled series (0 when absent).
func scrapeCounter(ctx context.Context, d *drill, base, name string) float64 {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		d.violation("building /metrics request: %v", err)
		return 0
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		d.violation("scraping /metrics: %v", err)
		return 0
	}
	defer resp.Body.Close() //nolint:errcheck
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		d.violation("reading /metrics: %v", err)
		return 0
	}
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`).FindSubmatch(body)
	if m == nil {
		d.violation("/metrics lacks series %s", name)
		return 0
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		d.violation("unparseable %s value %q", name, m[1])
		return 0
	}
	return v
}
