package main

// The high-availability drill (-ha): a true coordinator-failover
// exercise over real processes. The binary re-execs itself as a
// three-member replicated job control plane (internal/replica over real
// HTTP), submits one paced Monte-Carlo job through the leader-following
// client, SIGKILLs the LEADER after the job has durably checkpointed but
// long before it finishes, and asserts the subsystem's headline
// invariants:
//
//   - a surviving follower promotes itself within the election lease and
//     resumes the job from its last replicated checkpoint;
//   - the failed-over job's final result is bit-identical to an
//     uninterrupted single-process run of the same spec — the leader's
//     death is invisible in the tallies;
//   - the kill provably interrupted real work (the job had completed
//     some but not all samples on the old leader);
//   - after a second member dies the cluster has no quorum, and a submit
//     is REFUSED — a job is never reported accepted without a majority
//     durably holding it.
//
// The drill runs with replication faults armed (replica.ship attempt
// drops) so shipment retries are exercised, not just the happy path.
// Exits 1 when any invariant is violated.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"

	"yap/internal/client"
	"yap/internal/core"
	"yap/internal/faultinject"
	"yap/internal/jobs"
	"yap/internal/replica"
	"yap/internal/resilience"
	"yap/internal/service"
	"yap/internal/sim"
)

var (
	haMode    = flag.Bool("ha", false, "run the replicated control-plane failover drill instead of the load mix")
	haWafers  = flag.Int("ha-wafers", 120, "wafers for the -ha drill job")
	haServerX = flag.Bool("ha-server-exec", false, "internal: run as a -ha drill cluster member subprocess")
	haDir     = flag.String("ha-exec-dir", "", "internal: job store directory for the -ha member")
	haAddr    = flag.String("ha-exec-addr", "", "internal: pre-reserved listen address for the -ha member")
	haSelf    = flag.String("ha-exec-self", "", "internal: this member's advertised URL")
	haPeers   = flag.String("ha-exec-peers", "", "internal: comma-separated peer URLs")
)

// haLease keeps failover fast: a dead leader is succeeded within about
// half a second, well inside the paced job's multi-second runtime.
const haLease = 400 * time.Millisecond

// runHAServer is the subprocess side: one member of the replica set on a
// pre-reserved loopback port. Like the jobs drill daemon it never closes
// the node — the parent SIGKILLs members to model crashes.
func runHAServer(logger *log.Logger) {
	if *haDir == "" || *haAddr == "" || *haSelf == "" || *haPeers == "" {
		logger.Fatal("-ha-server-exec requires -ha-exec-dir, -ha-exec-addr, -ha-exec-self and -ha-exec-peers")
	}
	inj, err := faultinject.FromEnv()
	if err != nil {
		logger.Fatalf("ha member: invalid %s: %v", faultinject.EnvVar, err)
	}
	node, err := replica.Open(replica.Config{
		Dir:       *haDir,
		Self:      *haSelf,
		Peers:     strings.Split(*haPeers, ","),
		Transport: &replica.HTTPTransport{},
		Jobs:      jobs.Config{Dir: *haDir, SimWorkers: 2, Faults: inj, Logger: logger},
		Lease:     haLease,
		Faults:    inj,
		Logger:    logger,
	})
	if err != nil {
		logger.Fatalf("ha member: opening replica node: %v", err)
	}
	ln, err := net.Listen("tcp", *haAddr)
	if err != nil {
		logger.Fatalf("ha member: listen %s: %v", *haAddr, err)
	}
	srv := service.New(service.Config{
		MaxConcurrentSims: 2,
		RequestTimeout:    30 * time.Second,
		BreakerThreshold:  -1,
		Faults:            inj,
		Jobs:              node.Jobs(),
		Replica:           node,
		Logger:            logger,
	})
	fmt.Printf("%shttp://%s\n", workerBanner, ln.Addr())
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatalf("ha member: serve: %v", err)
	}
}

// reserveAddrs grabs n kernel-assigned loopback ports and releases them
// again: the replica members must know each other's URLs before any of
// them starts listening. The tiny release-to-rebind window is fine for a
// drill on loopback.
func reserveAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = ln.Addr().String()
		ln.Close() //nolint:errcheck
	}
	return addrs, nil
}

// haRoleRe extracts the replica role gauge from a /metrics scrape.
var haRoleRe = regexp.MustCompile(`(?m)^yapserve_replica_role (\d+)$`)

// haRole probes one member's role via /metrics; -1 means unreachable.
func haRole(ctx context.Context, base string) int {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return -1
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return -1
	}
	defer resp.Body.Close() //nolint:errcheck
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return -1
	}
	m := haRoleRe.FindSubmatch(body)
	if m == nil {
		return -1
	}
	role, err := strconv.Atoi(string(m[1]))
	if err != nil {
		return -1
	}
	return role
}

// haWaitLeader polls the live members until exactly one reports itself
// leader, returning its index; -1 on timeout.
func haWaitLeader(ctx context.Context, urls []string, dead map[int]bool, patience time.Duration) int {
	deadline := time.Now().Add(patience)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		leader := -1
		leaders := 0
		for i, u := range urls {
			if dead[i] {
				continue
			}
			if haRole(ctx, u) == int(replica.RoleLeader) {
				leader = i
				leaders++
			}
		}
		if leaders == 1 {
			return leader
		}
		time.Sleep(20 * time.Millisecond)
	}
	return -1
}

// runHADrill is the parent side; returns the process exit code.
func runHADrill(logger *log.Logger, seed uint64) int {
	d := &drill{logger: logger}
	wafers := *haWafers
	if wafers < 3*jobsCheckpointEvery {
		logger.Fatalf("-ha-wafers must be at least %d so the kill can land between checkpoints", 3*jobsCheckpointEvery)
	}
	const members = 3

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// The uninterrupted single-process reference the failover is measured
	// against.
	base, err := sim.RunW2WContext(ctx, sim.Options{Params: core.Baseline(), Seed: seed, Wafers: wafers, Workers: 2})
	if err != nil {
		logger.Fatalf("ha: baseline: %v", err)
	}

	addrs, err := reserveAddrs(members)
	if err != nil {
		logger.Fatalf("ha: reserving ports: %v", err)
	}
	urls := make([]string, members)
	for i, a := range addrs {
		urls[i] = "http://" + a
	}

	// Every member paces job slices 25ms (so the kill cannot race
	// completion, whichever member leads) and drops 5% of replication
	// shipment attempts (so sender retry is exercised under load).
	pace := fmt.Sprintf("%s=seed=1,%s=1:delay:25ms,%s=0.05:error",
		faultinject.EnvVar, faultinject.HookJobsRun, faultinject.HookReplicaShip)
	procs := make([]*workerProc, members)
	dead := make(map[int]bool)
	for i := range procs {
		peers := make([]string, 0, members-1)
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		dir, err := os.MkdirTemp("", "yapload-ha-*")
		if err != nil {
			logger.Fatalf("ha: store dir: %v", err)
		}
		defer os.RemoveAll(dir) //nolint:errcheck
		procs[i], err = startSubprocess([]string{pace}, "-ha-server-exec",
			"-ha-exec-dir", dir, "-ha-exec-addr", addrs[i],
			"-ha-exec-self", urls[i], "-ha-exec-peers", strings.Join(peers, ","))
		if err != nil {
			logger.Fatalf("ha: starting member %d: %v", i, err)
		}
		defer procs[i].kill()
		logger.Printf("ha: member %d pid %d up at %s", i, procs[i].cmd.Process.Pid, urls[i])
	}

	leader := haWaitLeader(ctx, urls, dead, 10*time.Second)
	if leader < 0 {
		d.violation("no single leader emerged from the fresh cluster")
		return d.haExit()
	}
	logger.Printf("ha: member %d leads", leader)

	// Submit through a FOLLOWER: the client must follow the 409 redirect.
	cli, err := client.New(client.Config{BaseURL: urls[(leader+1)%members], MaxAttempts: 8,
		Backoff: resilience.Backoff{Base: 5 * time.Millisecond, Max: 300 * time.Millisecond, Seed: seed}})
	if err != nil {
		logger.Fatalf("ha: client: %v", err)
	}
	sub, err := cli.SubmitJob(ctx, service.JobSubmitRequest{
		Seed: seed, Wafers: wafers, Workers: 2, CheckpointEvery: jobsCheckpointEvery,
	})
	if err != nil {
		logger.Fatalf("ha: submit: %v", err)
	}
	logger.Printf("ha: submitted %s via follower redirect (%d wafers, checkpoint every %d)",
		sub.ID, wafers, jobsCheckpointEvery)

	// Wait for the first durable checkpoint, then SIGKILL the leader.
	var atKill *service.JobResponse
	for atKill == nil {
		job, err := cli.GetJob(ctx, sub.ID)
		if err != nil {
			logger.Fatalf("ha: polling before kill: %v", err)
		}
		switch {
		case job.State == "running" && job.Completed >= jobsCheckpointEvery:
			atKill = job
		case job.State == "pending" || job.State == "running":
			time.Sleep(5 * time.Millisecond)
		default:
			d.violation("job reached %q before the kill could land; the drill exercised nothing", job.State)
			return d.haExit()
		}
	}
	logger.Printf("ha: SIGKILLing leader %d (pid %d) with %d/%d samples checkpointed",
		leader, procs[leader].cmd.Process.Pid, atKill.Completed, wafers)
	procs[leader].kill()
	dead[leader] = true
	if atKill.Completed >= wafers {
		d.violation("kill landed after all %d samples completed; widen -ha-wafers", wafers)
	}

	successor := haWaitLeader(ctx, urls, dead, 15*time.Second)
	if successor < 0 {
		d.violation("no successor elected after the leader died")
		return d.haExit()
	}
	logger.Printf("ha: member %d took over", successor)

	// The leader-following client rides out the failover: its learned
	// leader is dead, so it falls back and follows the new redirect.
	done, err := cli.WaitJob(ctx, sub.ID, 10*time.Millisecond)
	if err != nil {
		logger.Fatalf("ha: waiting for failed-over job: %v", err)
	}
	switch {
	case done.State != "done":
		d.violation("failed-over job finished as %q (error %q), want done", done.State, done.Error)
	case done.Result == nil:
		d.violation("failed-over job has no result")
	default:
		if done.Resumes < 1 {
			d.violation("failed-over job reports %d resumes, want >= 1", done.Resumes)
		}
		r := done.Result
		if r.Yield != base.Yield || r.YieldLo != base.YieldLo || r.YieldHi != base.YieldHi ||
			r.Survived != base.Counts.Survived || r.Dies != base.Counts.Dies ||
			r.OverlayYield != base.OverlayYield || r.DefectYield != base.DefectYield ||
			r.RecessYield != base.RecessYield {
			d.violation("failed-over result diverges from uninterrupted run:\n  failover %+v\n  single   %+v", r, base)
		} else {
			logger.Printf("ha: failed-over result bit-identical to uninterrupted run: %d/%d dies, yield %.6f",
				r.Survived, r.Dies, r.Yield)
		}
	}

	// Kill a second member: one of three survivors is not a majority, so
	// a submit must be refused — never falsely accepted.
	second := (successor + 1) % members
	if dead[second] {
		second = (successor + 2) % members
	}
	logger.Printf("ha: SIGKILLing member %d — the cluster loses quorum", second)
	procs[second].kill()
	dead[second] = true
	qctx, qcancel := context.WithTimeout(ctx, 20*time.Second)
	refused, err := client.New(client.Config{BaseURL: urls[successor], MaxAttempts: 2,
		Backoff: resilience.Backoff{Base: 5 * time.Millisecond, Max: 300 * time.Millisecond, Seed: seed + 1}})
	if err != nil {
		logger.Fatalf("ha: client: %v", err)
	}
	resp, err := refused.SubmitJob(qctx, service.JobSubmitRequest{Seed: seed + 7, Wafers: 4})
	qcancel()
	if err == nil {
		d.violation("submit without quorum reported accepted: %+v", resp)
	} else {
		logger.Printf("ha: quorumless submit correctly refused: %v", err)
	}

	fmt.Printf("yapload: ha drill: killed leader at %d/%d samples, follower finished the job\n",
		atKill.Completed, wafers)
	return d.haExit()
}

// haExit prints collected violations and maps them onto an exit code.
func (d *drill) haExit() int {
	if len(d.violations) > 0 {
		for _, v := range d.violations {
			fmt.Fprintln(os.Stderr, "yapload: VIOLATION:", v)
		}
		return 1
	}
	fmt.Println("yapload: all high-availability invariants held")
	return 0
}
