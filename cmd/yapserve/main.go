// Command yapserve runs the YAP yield model as a resident HTTP service:
// analytic evaluations (cached, microseconds), Monte-Carlo simulations
// (bounded worker pool, per-request deadlines, cooperative cancellation)
// and concurrent parameter sweeps, with Prometheus-format metrics.
//
// Usage:
//
//	yapserve [-addr :8080] [-config process.json] [-cache 1024]
//	         [-max-sims n] [-sim-workers n] [-timeout 2m]
//	         [-max-body bytes] [-max-sweep-points n]
//	         [-max-queued n] [-retry-after 1s]
//	         [-breaker-threshold n] [-breaker-cooldown 5s]
//	         [-worker | -workers url1,url2,...]
//	         [-shards-per-worker 2] [-heartbeat 2s] [-shard-timeout d]
//	         [-jobs-dir dir] [-checkpoint-every n] [-job-ttl d]
//	         [-job-runners n] [-stream-heartbeat 15s]
//	         [-peers url1,url2 -advertise url] [-election-lease 2s]
//	         [-election-heartbeat d] [-quorum-timeout d]
//	         [-cache-peers url1,url2] [-version]
//
// Resilience: simulate admission beyond -max-queued waiting requests is
// shed with 503 "overloaded" plus a Retry-After hint; a deadline that
// fires mid-simulation returns the completed samples as a 200 with
// "partial": true; repeated internal simulation failures trip a circuit
// breaker. Setting YAP_FAULTS (see internal/faultinject) arms
// deterministic fault injection for chaos drills.
//
// Distributed simulation (internal/dist): -workers turns the daemon into
// a coordinator that shards each /v1/simulate run across the listed
// worker daemons and merges their integer tallies into a result
// bit-identical to the single-node run for the same seed. Workers are
// plain yapserve processes — -worker is the same daemon with a label;
// the shard protocol (/v1/shard) is always served. Shards from dead or
// slow workers are reassigned automatically; reassignment and fleet
// counters appear on /metrics.
//
// Durable jobs (internal/jobs): -jobs-dir enables POST /v1/jobs, an
// asynchronous alternative to /v1/simulate. Submissions answer 202
// immediately and execute on a bounded runner pool, appending raw-tally
// checkpoints every -checkpoint-every samples to a write-ahead log in
// -jobs-dir. A crash or restart replays the log and resumes every
// unfinished job from its last durable checkpoint, with final results
// bit-identical to an uninterrupted run. Finished jobs stay queryable
// for -job-ttl. When -workers is set, jobs shard across the fleet like
// synchronous simulations.
//
// Streaming and early stop (internal/converge): every running job's
// convergence is watchable live on GET /v1/jobs/{id}/stream — SSE
// events carrying the job's cumulative tallies and Wilson-interval
// yield estimate, resumable after a dropped connection via
// Last-Event-ID, kept alive by comment heartbeats every
// -stream-heartbeat. Both /v1/simulate and /v1/jobs accept "epsilon"
// (plus "min_samples") to arm the deterministic sequential early-stop
// rule: the run finishes as soon as the 95% CI half-width reaches
// epsilon, reporting stopped_early, samples_used and ci_halfwidth.
//
// High availability (internal/replica): -peers makes the daemon one
// member of a replicated job control plane. Every durable job-store
// record ships to the peers over POST /v1/replica and a submit is only
// reported accepted once a quorum holds it; the members run a
// deterministic leader election (term + heartbeat lease; ties break by
// member rank, and a stale replica can never win), so when the leader
// dies a follower promotes itself within about one lease and resumes
// every unfinished job from its last replicated checkpoint —
// bit-identically. Job mutations on a follower answer 409 "not_leader"
// with the leader's URL; the Go client follows it automatically.
//
// Fleet cache (internal/fleetcache): -cache-peers names the OTHER
// members of a fleet-wide evaluate cache (it defaults to reusing -peers,
// so an HA cluster shares its cache for free; -advertise is this
// member's identity either way). Analytic evaluations — /v1/evaluate,
// batch, sweeps, sweep jobs — then deduplicate fleet-wide: concurrent
// identical requests coalesce onto one in-flight computation
// (singleflight), local misses consult the key's rendezvous-hashed owner
// member before computing, and a member that computes a remotely-owned
// key pushes the entry to its owner. Peer exchanges are hash-verified,
// deadline-bounded and circuit-broken, so a dead peer degrades to local
// compute — never an error.
//
// Endpoints:
//
//	POST   /v1/evaluate   analytic W2W/D2W breakdown (Eq. 22 / Eq. 28)
//	POST   /v1/evaluate/batch  N points over a shared base, streamed per-point results
//	GET    /v1/cache/{mode}/{hash}  one fleet-cache entry (peer fetch; local store only)
//	PUT    /v1/cache/{mode}/{hash}  owner-warming offer (hash re-verified)
//	POST   /v1/simulate   Monte-Carlo yield simulation (sharded when -workers is set)
//	POST   /v1/shard      one slice of a distributed run (worker protocol)
//	POST   /v1/sweep      batch evaluation with partial-failure reporting
//	POST   /v1/jobs       submit a durable asynchronous simulation (needs -jobs-dir)
//	GET    /v1/jobs       list jobs
//	GET    /v1/jobs/{id}  poll one job (terminal jobs carry the result)
//	GET    /v1/jobs/{id}/stream  live convergence events (SSE, resumable)
//	DELETE /v1/jobs/{id}  cancel a pending or running job
//	POST   /v1/replica    control-plane replication (peer append/vote RPCs)
//	GET    /healthz       liveness
//	GET    /metrics       Prometheus text format
//
// SIGINT/SIGTERM drain in-flight requests (up to -drain, default 30s)
// before exiting; a second signal aborts immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"yap/internal/client"
	"yap/internal/core"
	"yap/internal/dist"
	"yap/internal/faultinject"
	"yap/internal/fleetcache"
	"yap/internal/jobs"
	"yap/internal/replica"
	"yap/internal/service"
	"yap/internal/sim"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		config      = flag.String("config", "", "JSON process file used as the default parameter set (missing fields default to Table I)")
		cacheSize   = flag.Int("cache", 1024, "evaluate-cache capacity in entries (negative disables)")
		maxSims     = flag.Int("max-sims", 0, "max concurrently executing simulations (0 = GOMAXPROCS)")
		workers     = flag.Int("sim-workers", 0, "default per-simulation parallelism (0 = GOMAXPROCS)")
		timeout     = flag.Duration("timeout", 2*time.Minute, "per-request deadline for simulate/sweep (negative disables)")
		maxBody     = flag.Int64("max-body", 1<<20, "request body limit in bytes")
		maxPoints   = flag.Int("max-sweep-points", 10000, "max points per sweep request")
		maxQueued   = flag.Int("max-queued", 0, "max simulate requests waiting for a pool slot before shedding 503 (0 = 4×max-sims, negative = no queue)")
		retryAfter  = flag.Duration("retry-after", time.Second, "back-off hint on overloaded responses")
		brkThresh   = flag.Int("breaker-threshold", 0, "consecutive internal simulation failures that trip the circuit breaker (0 = 8, negative disables)")
		brkCooldown = flag.Duration("breaker-cooldown", 5*time.Second, "how long a tripped breaker sheds before probing")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")

		workerMode   = flag.Bool("worker", false, "run as a distributed-simulation worker (a label: the shard protocol is always served)")
		workerList   = flag.String("workers", "", "comma-separated worker base URLs; turns this daemon into a sharding coordinator")
		shardsPerW   = flag.Int("shards-per-worker", 0, "shards planned per worker per run (0 = 2)")
		heartbeat    = flag.Duration("heartbeat", 0, "worker liveness probe interval (0 = 2s, negative disables)")
		shardTimeout = flag.Duration("shard-timeout", 0, "per-shard dispatch deadline; slower workers get their shard reassigned (0 = run deadline only)")

		jobsDir    = flag.String("jobs-dir", "", "directory for the durable job store; enables POST /v1/jobs (empty disables)")
		chkEvery   = flag.Int("checkpoint-every", 0, "samples per durable job checkpoint (0 = 200)")
		jobTTL     = flag.Duration("job-ttl", 0, "how long finished jobs stay queryable before GC (0 = 1h, negative keeps forever)")
		jobRunners = flag.Int("job-runners", 0, "concurrently executing jobs (0 = 2)")
		streamHB   = flag.Duration("stream-heartbeat", 0, "SSE keep-alive interval on /v1/jobs/{id}/stream (0 = 15s, negative disables)")

		peers         = flag.String("peers", "", "comma-separated base URLs of the OTHER members of a replicated job control plane (requires -jobs-dir and -advertise)")
		advertise     = flag.String("advertise", "", "this daemon's own base URL as the other members reach it (its identity in the replica set)")
		electionLease = flag.Duration("election-lease", 0, "how long a follower trusts the leader after its last heartbeat (0 = 2s)")
		electionBeat  = flag.Duration("election-heartbeat", 0, "leader heartbeat cadence (0 = lease/8)")
		quorumTimeout = flag.Duration("quorum-timeout", 0, "how long a submit waits for quorum acknowledgement (0 = 2×lease)")

		cachePeers = flag.String("cache-peers", "", "comma-separated base URLs of the OTHER fleet-cache members (requires -advertise; empty reuses -peers)")

		printVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *printVersion {
		version, goVersion := service.BuildInfo()
		fmt.Printf("yapserve %s (%s)\n", version, goVersion)
		return
	}
	logger := log.New(os.Stderr, "yapserve: ", log.LstdFlags)
	if *workerMode && *workerList != "" {
		logger.Fatal("-worker and -workers are mutually exclusive: a coordinator must not be its own worker")
	}

	defaults := core.Baseline()
	if *config != "" {
		loaded, err := core.LoadParams(*config)
		if err != nil {
			logger.Fatalf("invalid -config: %v", err)
		}
		defaults = loaded
	}

	faults, err := faultinject.FromEnv()
	if err != nil {
		logger.Fatalf("invalid %s: %v", faultinject.EnvVar, err)
	}
	if faults != nil {
		logger.Printf("fault injection ACTIVE: %s", faults)
	}

	var coord *dist.Coordinator
	if *workerList != "" {
		urls := make([]string, 0, 4)
		for _, u := range strings.Split(*workerList, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		coord, err = dist.New(dist.Config{
			Workers:           urls,
			ShardsPerWorker:   *shardsPerW,
			ShardTimeout:      *shardTimeout,
			HeartbeatInterval: *heartbeat,
			Faults:            faults,
			Logger:            logger,
		})
		if err != nil {
			logger.Fatalf("invalid -workers: %v", err)
		}
		defer coord.Close()
		logger.Printf("coordinator mode: sharding simulations across %d workers", len(urls))
	} else if *workerMode {
		logger.Print("worker mode: serving shards for a coordinator")
	}

	var peerURLs []string
	if *peers != "" {
		for _, u := range strings.Split(*peers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				peerURLs = append(peerURLs, u)
			}
		}
	}
	if len(peerURLs) > 0 {
		if *jobsDir == "" {
			logger.Fatal("-peers replicates the durable job store; it requires -jobs-dir")
		}
		if *advertise == "" {
			logger.Fatal("-peers requires -advertise: the URL this member is reached at is its identity in the replica set")
		}
	}

	// The fleet cache is built unconditionally — unpeered it is the
	// daemon's local evaluate cache, shared between the HTTP handlers and
	// sweep jobs; with peers it deduplicates computations fleet-wide.
	cachePeerURLs := peerURLs
	if *cachePeers != "" {
		cachePeerURLs = nil
		for _, u := range strings.Split(*cachePeers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				cachePeerURLs = append(cachePeerURLs, u)
			}
		}
	}
	fcfg := fleetcache.Config{CacheSize: *cacheSize, Faults: faults}
	if len(cachePeerURLs) > 0 {
		if *advertise == "" {
			logger.Fatal("-cache-peers requires -advertise: the URL this member is reached at is its identity in the fleet")
		}
		fcfg.Self = *advertise
		fcfg.Members = append(append([]string{}, cachePeerURLs...), *advertise)
		fcfg.Transport = &client.CacheTransport{}
		logger.Printf("fleet cache: %s + %d peers", *advertise, len(cachePeerURLs))
	}
	fleet := fleetcache.New(fcfg)
	defer fleet.Close()

	var jm *jobs.Manager
	var node *replica.Node
	if *jobsDir != "" {
		jcfg := jobs.Config{
			Dir:             *jobsDir,
			Runners:         *jobRunners,
			CheckpointEvery: *chkEvery,
			ResultTTL:       *jobTTL,
			SimWorkers:      *workers,
			Faults:          faults,
			Logger:          logger,
			// Sweep jobs evaluate through the shared cache tier.
			Evaluate: fleet.EvaluateParams,
		}
		if coord != nil {
			// Jobs shard across the fleet like synchronous simulations;
			// checkpoints still land in the coordinator's local store.
			jcfg.Run = func(ctx context.Context, mode string, opts sim.Options) (sim.Result, error) {
				res, _, err := coord.Simulate(ctx, mode, opts)
				return res, err
			}
		}
		if len(peerURLs) > 0 {
			// The replica node owns the manager: it opens the store in
			// follower mode and activates it only on winning an election.
			node, err = replica.Open(replica.Config{
				Dir:           *jobsDir,
				Self:          *advertise,
				Peers:         peerURLs,
				Transport:     &replica.HTTPTransport{},
				Jobs:          jcfg,
				Lease:         *electionLease,
				Heartbeat:     *electionBeat,
				QuorumTimeout: *quorumTimeout,
				Faults:        faults,
				Logger:        logger,
			})
			if err != nil {
				logger.Fatalf("invalid replica configuration: %v", err)
			}
			jm = node.Jobs()
			logger.Printf("replicated control plane: %s + %d peers, store %s", *advertise, len(peerURLs), *jobsDir)
		} else {
			jm, err = jobs.Open(jcfg)
			if err != nil {
				logger.Fatalf("invalid -jobs-dir: %v", err)
			}
		}
		every := *chkEvery
		if every <= 0 {
			every = 200
		}
		logger.Printf("durable jobs: store %s, checkpoint every %d samples", *jobsDir, every)
	}

	cfg := service.Config{
		Defaults:          &defaults,
		CacheSize:         *cacheSize,
		MaxConcurrentSims: *maxSims,
		SimWorkers:        *workers,
		RequestTimeout:    *timeout,
		MaxBodyBytes:      *maxBody,
		MaxSweepPoints:    *maxPoints,
		MaxQueuedSims:     *maxQueued,
		RetryAfter:        *retryAfter,
		BreakerThreshold:  *brkThresh,
		BreakerCooldown:   *brkCooldown,
		StreamHeartbeat:   *streamHB,
		Faults:            faults,
		Logger:            logger,
		FleetCache:        fleet,
	}
	if coord != nil {
		cfg.Distributor = coord
	}
	if jm != nil {
		cfg.Jobs = jm
	}
	if node != nil {
		cfg.Replica = node
	}
	srv := service.New(cfg)
	logger.Printf("resilience: %s", srv.ResilienceSummary())
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until the first SIGINT/SIGTERM, then drain gracefully; a
	// second signal (stop() restores default handling) kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (params %s)", *addr, defaults.HashString())
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	logger.Printf("shutting down, draining in-flight requests (budget %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop simulation admission first (stragglers get 503 + Retry-After),
	// then let the HTTP server wait out connections that hold responses.
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("pool drain: %v", err)
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			logger.Print("drain budget exhausted; closing remaining connections")
			httpSrv.Close()
		} else {
			fmt.Fprintln(os.Stderr, "yapserve: shutdown:", err)
			os.Exit(1)
		}
	}
	switch {
	case node != nil:
		// The node owns the manager: closing it stops the election loop and
		// peer senders, then snapshots the store. A surviving peer takes
		// over leadership one lease later and resumes unfinished jobs.
		if err := node.Close(); err != nil {
			logger.Printf("replica close: %v", err)
		}
	case jm != nil:
		// After HTTP has drained: snapshot the store and stop the runners.
		// Mid-run jobs stay durably running and resume at the next start.
		if err := jm.Close(); err != nil {
			logger.Printf("job store close: %v", err)
		}
	}
	logger.Print("bye")
}
