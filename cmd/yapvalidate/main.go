// Command yapvalidate regenerates the paper's model-validation figures:
// the 300-parameter-set model-vs-simulation correlations (Figs. 5a, 5b,
// 8b, 9b–d, 10), the defect-size distribution comparisons (Figs. 8a, 9a)
// and the model/simulator runtime comparison (§IV). Each experiment writes
// a CSV of its raw data and a PNG rendering into -out.
//
// Usage:
//
//	yapvalidate [-exp fig5|fig8a|fig9a|fig9|fig10|runtime|all]
//	            [-sets n] [-wafers n] [-dies n] [-seed n] [-out dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"yap/internal/core"
	"yap/internal/experiments"
	"yap/internal/report"
	"yap/internal/validate"
	"yap/internal/viz"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: fig5, fig8a, fig9a, fig9, fig10, runtime or all")
		sets   = flag.Int("sets", 300, "validation parameter sets (paper: 300)")
		wafers = flag.Int("wafers", 200, "W2W wafer samples per set")
		dies   = flag.Int("dies", 5000, "D2W die samples per set")
		seed   = flag.Uint64("seed", 2025, "RNG seed")
		out    = flag.String("out", "results", "output directory for CSV and PNG files")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	cfg := validate.Config{
		Base:   core.Baseline(),
		Sets:   *sets,
		Wafers: *wafers,
		Dies:   *dies,
		Seed:   *seed,
		Progress: func(done, total int) {
			if done%25 == 0 || done == total {
				fmt.Printf("  %d/%d parameter sets\n", done, total)
			}
		},
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("== %s ==\n", name)
		if err := f(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
	}

	var w2wStudy, d2wStudy *validate.Study

	run("fig5", func() error {
		var err error
		w2wStudy, err = experiments.ValidateW2W(cfg)
		if err != nil {
			return err
		}
		return writeStudy(w2wStudy, *out, map[string]string{
			"overlay": "fig5a_overlay_w2w",
			"recess":  "fig5b_recess_w2w",
			"defect":  "fig8b_defect_w2w",
			"total":   "fig10_total_w2w",
		})
	})

	run("fig8a", func() error {
		d, err := experiments.Fig8aTailDistribution(core.Baseline(), *seed, 500000)
		if err != nil {
			return err
		}
		fmt.Printf("  max bin error: %.2f%%\n", d.MaxBinError(2000)*100)
		return writeDistribution(d, filepath.Join(*out, "fig8a_tail_distribution"))
	})

	run("fig9a", func() error {
		d, err := experiments.Fig9aMainVoidDistribution(core.Baseline(), *seed, 500000)
		if err != nil {
			return err
		}
		fmt.Printf("  max bin error: %.2f%%\n", d.MaxBinError(2000)*100)
		return writeDistribution(d, filepath.Join(*out, "fig9a_main_void_distribution"))
	})

	run("fig9", func() error {
		var err error
		d2wStudy, err = experiments.ValidateD2W(cfg)
		if err != nil {
			return err
		}
		return writeStudy(d2wStudy, *out, map[string]string{
			"overlay": "fig9b_overlay_d2w",
			"recess":  "fig9c_recess_d2w",
			"defect":  "fig9d_defect_d2w",
			"total":   "fig10_total_d2w",
		})
	})

	run("fig10", func() error {
		// Fig. 10 is the total-yield correlation for both styles; reuse
		// studies when fig5/fig9 already ran (exp=all), else run them.
		if w2wStudy == nil {
			var err error
			w2wStudy, err = experiments.ValidateW2W(cfg)
			if err != nil {
				return err
			}
			if err := writeStudy(w2wStudy, *out, map[string]string{"total": "fig10_total_w2w"}); err != nil {
				return err
			}
		}
		if d2wStudy == nil {
			var err error
			d2wStudy, err = experiments.ValidateD2W(cfg)
			if err != nil {
				return err
			}
			if err := writeStudy(d2wStudy, *out, map[string]string{"total": "fig10_total_d2w"}); err != nil {
				return err
			}
		}
		fmt.Printf("  W2W total: %v\n  D2W total: %v\n", &w2wStudy.Total, &d2wStudy.Total)
		return nil
	})

	run("runtime", func() error {
		w, err := validate.MeasureRuntimeW2W(core.Baseline(), 1000)
		if err != nil {
			return err
		}
		fmt.Println(" ", w)
		d, err := validate.MeasureRuntimeD2W(core.Baseline(), 20000)
		if err != nil {
			return err
		}
		fmt.Println(" ", d)
		return nil
	})

	fmt.Println("done; outputs in", *out)
}

// writeStudy emits a CSV and correlation PNG for each named term.
func writeStudy(s *validate.Study, dir string, names map[string]string) error {
	for _, c := range s.Correlations() {
		base, ok := names[c.Name]
		if !ok {
			continue
		}
		fmt.Printf("  %v\n", c)
		t := report.NewTable("set", "sim_yield", "model_yield")
		for i := range c.Sim {
			t.AddRow(i, c.Sim[i], c.Model[i])
		}
		if err := writeCSV(t, filepath.Join(dir, base+".csv")); err != nil {
			return err
		}
		title := fmt.Sprintf("%s %s: model vs simulation", s.Mode, c.Name)
		if err := viz.CorrelationPlot(c.Sim, c.Model, title).SavePNG(filepath.Join(dir, base+".png")); err != nil {
			return err
		}
	}
	return nil
}

func writeDistribution(d *experiments.Distribution, base string) error {
	t := report.NewTable("bin_center", "empirical_density", "analytic_density")
	for i, c := range d.Hist.Centers() {
		t.AddRow(c, d.Hist.Density(i), d.PDF(c))
	}
	if err := writeCSV(t, base+".csv"); err != nil {
		return err
	}
	return viz.DistributionPlot(d.Hist, d.PDF, d.Title, d.XLabel, d.XScale).SavePNG(base + ".png")
}

func writeCSV(t *report.Table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "yapvalidate:", err)
	os.Exit(1)
}
