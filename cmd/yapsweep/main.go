// Command yapsweep runs one-dimensional parameter sweeps of the analytic
// yield model — the inner loop of the system-technology co-optimization
// YAP's speed enables. Output is a CSV-compatible table of the swept value
// against the W2W and D2W per-mechanism breakdowns.
//
// Usage:
//
//	yapsweep -param pitch -from 0.8 -to 10 -steps 20 [-log]
//	yapsweep -param density -from 0.01 -to 1 -steps 15 -log
//	yapsweep -param die-area -from 5 -to 400 -steps 12 -log
//	yapsweep -param warpage -from 1 -to 100 -steps 12 -log
//	yapsweep -param recess -from 4 -to 16 -steps 13
//	yapsweep -param roughness -from 0.2 -to 5 -steps 12 -log
//
// Units follow the paper's Table I conventions: pitch/warpage/roughness in
// µm/µm/nm, density in cm⁻², die-area in mm², recess in nm.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"yap/internal/core"
	"yap/internal/report"
	"yap/internal/units"
	"yap/internal/viz"
)

// sweepParam maps a flag name to units and a parameter mutation.
type sweepParam struct {
	unit  string
	apply func(core.Params, float64) core.Params
}

var sweepParams = map[string]sweepParam{
	"pitch": {"um", func(p core.Params, v float64) core.Params {
		return p.WithPitch(v * units.Micrometer)
	}},
	"density": {"cm^-2", func(p core.Params, v float64) core.Params {
		return p.WithDefectDensity(v * units.PerSquareCentimeter)
	}},
	"die-area": {"mm^2", func(p core.Params, v float64) core.Params {
		return p.WithDieArea(v * units.SquareMillimeter)
	}},
	"warpage": {"um", func(p core.Params, v float64) core.Params {
		p.Warpage = v * units.Micrometer
		return p
	}},
	"recess": {"nm", func(p core.Params, v float64) core.Params {
		p.RecessTop = v * units.Nanometer
		p.RecessBottom = v * units.Nanometer
		return p
	}},
	"roughness": {"nm", func(p core.Params, v float64) core.Params {
		p.Roughness = v * units.Nanometer
		return p
	}},
	"sigma1": {"nm", func(p core.Params, v float64) core.Params {
		p.RandomMisalignmentSigma = v * units.Nanometer
		return p
	}},
}

func main() {
	var (
		param = flag.String("param", "pitch", "parameter to sweep: pitch, density, die-area, warpage, recess, roughness, sigma1")
		from  = flag.Float64("from", 1, "sweep start (Table I units)")
		to    = flag.Float64("to", 10, "sweep end")
		steps = flag.Int("steps", 10, "number of sweep points")
		log   = flag.Bool("log", false, "logarithmic spacing")
		csv   = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		png   = flag.String("png", "", "also render the sweep as a line chart PNG")
	)
	flag.Parse()

	sp, ok := sweepParams[*param]
	if !ok {
		fmt.Fprintf(os.Stderr, "yapsweep: unknown parameter %q\n", *param)
		os.Exit(1)
	}
	if *steps < 2 || *to <= *from || (*log && *from <= 0) {
		fmt.Fprintln(os.Stderr, "yapsweep: need steps >= 2, to > from (and from > 0 for -log)")
		os.Exit(1)
	}

	t := report.NewTable(
		fmt.Sprintf("%s (%s)", *param, sp.unit),
		"W2W Y_ovl", "W2W Y_cr", "W2W Y_df", "Y_W2W",
		"D2W Y_ovl", "D2W Y_cr", "D2W Y_df", "Y_D2W",
	)
	var xs, w2wY, d2wY []float64
	for i := 0; i < *steps; i++ {
		frac := float64(i) / float64(*steps-1)
		var v float64
		if *log {
			v = math.Exp(math.Log(*from) + frac*(math.Log(*to)-math.Log(*from)))
		} else {
			v = *from + frac*(*to-*from)
		}
		p := sp.apply(core.Baseline(), v)
		w, err := p.EvaluateW2W()
		if err != nil {
			fmt.Fprintf(os.Stderr, "yapsweep: %s=%g: %v\n", *param, v, err)
			os.Exit(1)
		}
		d, err := p.EvaluateD2W()
		if err != nil {
			fmt.Fprintf(os.Stderr, "yapsweep: %s=%g: %v\n", *param, v, err)
			os.Exit(1)
		}
		t.AddRow(v, w.Overlay, w.Recess, w.Defect, w.Total,
			d.Overlay, d.Recess, d.Defect, d.Total)
		xs = append(xs, v)
		w2wY = append(w2wY, w.Total)
		d2wY = append(d2wY, d.Total)
	}
	if *png != "" {
		chart := viz.LineChart([]viz.Series{
			{Name: "Y_W2W", X: xs, Y: w2wY},
			{Name: "Y_D2W", X: xs, Y: d2wY},
		}, fmt.Sprintf("bonding yield vs %s", *param),
			fmt.Sprintf("%s (%s)", *param, sp.unit), "yield", *log)
		if err := chart.SavePNG(*png); err != nil {
			fmt.Fprintln(os.Stderr, "yapsweep:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "wrote", *png)
	}
	if *csv {
		if err := t.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "yapsweep:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(t.Text())
}
