package main

import (
	"testing"

	"yap/internal/core"
	"yap/internal/units"
)

func TestRunAllModes(t *testing.T) {
	p := core.Baseline()
	for _, mode := range []string{"w2w", "d2w", "both"} {
		if err := run(p, mode, 1000*units.SquareMillimeter); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
}

func TestRunUnknownMode(t *testing.T) {
	if err := run(core.Baseline(), "bogus", 1e-3); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestRunInvalidParams(t *testing.T) {
	p := core.Baseline()
	p.DefectShape = 1
	if err := run(p, "w2w", 1e-3); err == nil {
		t.Error("invalid params accepted")
	}
}
