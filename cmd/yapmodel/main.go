// Command yapmodel evaluates the YAP near-analytical bonding-yield model
// for a parameter set and prints the per-mechanism breakdown (Eq. 22 for
// W2W, Eq. 28 for D2W) together with the Y_sys system yield.
//
// Usage:
//
//	yapmodel [-mode w2w|d2w|both] [-pitch um] [-die-area mm2]
//	         [-density cm-2] [-system-area mm2] [-table1]
//
// With no flags it reports the Table I baseline.
package main

import (
	"flag"
	"fmt"
	"os"

	"yap/internal/core"
	"yap/internal/experiments"
	"yap/internal/units"
)

func main() {
	var (
		mode       = flag.String("mode", "both", "bonding style: w2w, d2w or both")
		config     = flag.String("config", "", "JSON process file (missing fields default to Table I)")
		saveConfig = flag.String("save-config", "", "write the effective parameters to this JSON file and exit")
		pitch      = flag.Float64("pitch", 0, "bonding pitch in um (0 = Table I baseline; pads resize as d2=p/2, d1=p/3)")
		dieArea    = flag.Float64("die-area", 0, "square chiplet area in mm^2 (0 = baseline 10x10 mm)")
		density    = flag.Float64("density", 0, "particle defect density in cm^-2 (0 = baseline 0.1)")
		systemArea = flag.Float64("system-area", 1000, "2.5D system silicon area in mm^2 for Y_sys")
		table1     = flag.Bool("table1", false, "print the full parameter table (paper Table I) and exit")
	)
	flag.Parse()

	p := core.Baseline()
	if *config != "" {
		loaded, err := core.LoadParams(*config)
		if err != nil {
			// Unknown fields and out-of-range values are rejected at load
			// time (strict decode + Validate), so a typo'd field name fails
			// here instead of silently evaluating the Table I baseline.
			fmt.Fprintln(os.Stderr, "yapmodel: invalid -config:", err)
			os.Exit(1)
		}
		p = loaded
	}
	if *pitch > 0 {
		p = p.WithPitch(*pitch * units.Micrometer)
	}
	if *dieArea > 0 {
		p = p.WithDieArea(*dieArea * units.SquareMillimeter)
	}
	if *density > 0 {
		p = p.WithDefectDensity(*density * units.PerSquareCentimeter)
	}

	if *saveConfig != "" {
		if err := p.SaveParams(*saveConfig); err != nil {
			fmt.Fprintln(os.Stderr, "yapmodel:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *saveConfig)
		return
	}
	if *table1 {
		fmt.Println("Baseline parameters (paper Table I + DESIGN.md 2):")
		fmt.Println(experiments.TableI(p).Text())
		return
	}

	if err := run(p, *mode, *systemArea*units.SquareMillimeter); err != nil {
		fmt.Fprintln(os.Stderr, "yapmodel:", err)
		os.Exit(1)
	}
}

func run(p core.Params, mode string, systemArea float64) error {
	fmt.Printf("pitch=%s  pads(d1/d2)=%s/%s  die=%s x %s  D_t=%s\n",
		units.FormatMeters(p.Pitch), units.FormatMeters(p.TopPadDiameter), units.FormatMeters(p.BottomPadDiameter),
		units.FormatMeters(p.DieWidth), units.FormatMeters(p.DieHeight), units.FormatDensity(p.DefectDensity))
	fmt.Printf("pads/die=%d  dies/wafer=%d  delta=%s\n",
		p.PadArray().Pads(), p.Layout().DieCount(), units.FormatMeters(p.PadGeometry().MaxMisalignment()))

	if mode == "w2w" || mode == "both" {
		b, err := p.EvaluateW2W()
		if err != nil {
			return err
		}
		fmt.Printf("W2W model:  %v  (limited by %s)\n", b, b.Limiter())
	}
	if mode == "d2w" || mode == "both" {
		b, err := p.EvaluateD2W()
		if err != nil {
			return err
		}
		fmt.Printf("D2W model:  %v  (limited by %s)\n", b, b.Limiter())
		y, n, err := p.SystemYield(systemArea)
		if err != nil {
			return err
		}
		fmt.Printf("Y_sys(%s, %d chiplets) = %s\n", units.FormatArea(systemArea), n, units.Percent(y))
	}
	if mode != "w2w" && mode != "d2w" && mode != "both" {
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}
