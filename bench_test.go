package yap

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (the E1–E12 / A1–A3 index in DESIGN.md). Each benchmark
// regenerates the data behind its figure; sim-backed figures run at reduced
// sample counts per iteration so that `go test -bench=.` completes in
// minutes while preserving the workload shape. Full-scale regeneration is
// the job of cmd/yapvalidate and cmd/yapcases.

import (
	"testing"

	"yap/internal/core"
	"yap/internal/dist"
	"yap/internal/experiments"
	"yap/internal/sim"
	"yap/internal/units"
	"yap/internal/validate"
)

// BenchmarkTableIBaseline (E1) evaluates the analytic model at the Table I
// baseline — the paper's "0.5 s for W2W" measurement point; one iteration
// is one full W2W+D2W model evaluation.
func BenchmarkTableIBaseline(b *testing.B) {
	p := core.Baseline()
	for i := 0; i < b.N; i++ {
		if _, err := p.EvaluateW2W(); err != nil {
			b.Fatal(err)
		}
		if _, err := p.EvaluateD2W(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelEvalW2W times just the W2W analytic model (numerator of the
// E12 speedup claim).
func BenchmarkModelEvalW2W(b *testing.B) {
	p := core.Baseline()
	for i := 0; i < b.N; i++ {
		if _, err := p.EvaluateW2W(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelEvalD2W times the D2W analytic model including the
// placement-averaging quadrature.
func BenchmarkModelEvalD2W(b *testing.B) {
	p := core.Baseline()
	for i := 0; i < b.N; i++ {
		if _, err := p.EvaluateD2W(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimWaferW2W times one simulated bonded wafer (denominator of the
// E12 claim; the paper's simulator needs 1000 of these per yield estimate).
func BenchmarkSimWaferW2W(b *testing.B) {
	p := core.Baseline()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunW2W(sim.Options{Params: p, Seed: uint64(i), Wafers: 1, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimDieD2W times a 100-die D2W simulation batch.
func BenchmarkSimDieD2W(b *testing.B) {
	p := core.Baseline()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunD2W(sim.Options{Params: p, Seed: uint64(i), Dies: 100, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchValidate runs a reduced validation study (the workload of Figs. 5,
// 8b, 9, 10) and reports the per-term MSEs as custom metrics.
func benchValidate(b *testing.B, d2w bool) {
	for i := 0; i < b.N; i++ {
		cfg := validate.Config{
			Base:   core.Baseline(),
			Sets:   8,
			Wafers: 20,
			Dies:   1500,
			Seed:   uint64(2025 + i),
		}
		var (
			study *validate.Study
			err   error
		)
		if d2w {
			study, err = experiments.ValidateD2W(cfg)
		} else {
			study, err = experiments.ValidateW2W(cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range study.Correlations() {
				b.ReportMetric(c.MSE(), "MSE_"+c.Name)
			}
		}
	}
}

// BenchmarkFig5aOverlayValidation (E2) — W2W overlay model vs simulation.
// The W2W study produces all four terms at once; Figs. 5a, 5b, 8b and the
// W2W half of Fig. 10 share this workload.
func BenchmarkFig5aOverlayValidation(b *testing.B) { benchValidate(b, false) }

// BenchmarkFig5bRecessValidation (E3) — W2W Cu-recess model vs simulation.
func BenchmarkFig5bRecessValidation(b *testing.B) { benchValidate(b, false) }

// BenchmarkFig8bDefectValidation (E6) — W2W defect model vs simulation.
func BenchmarkFig8bDefectValidation(b *testing.B) { benchValidate(b, false) }

// BenchmarkFig9D2WValidation (E8) — D2W per-mechanism correlations
// (Figs. 9b–d) and the D2W half of Fig. 10.
func BenchmarkFig9D2WValidation(b *testing.B) { benchValidate(b, true) }

// BenchmarkFig10OverallValidation (E9) — both overall-yield correlations.
func BenchmarkFig10OverallValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := validate.Config{Base: core.Baseline(), Sets: 4, Wafers: 20, Dies: 1500, Seed: uint64(7 + i)}
		w, err := experiments.ValidateW2W(cfg)
		if err != nil {
			b.Fatal(err)
		}
		d, err := experiments.ValidateD2W(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(w.Total.MSE(), "MSE_W2W")
			b.ReportMetric(d.Total.MSE(), "MSE_D2W")
		}
	}
}

// BenchmarkFig6VoidMap (E4) materializes one wafer's void map.
func BenchmarkFig6VoidMap(b *testing.B) {
	p := core.Baseline()
	for i := 0; i < b.N; i++ {
		m, err := sim.GenerateVoidMap(p, uint64(i), 0)
		if err != nil {
			b.Fatal(err)
		}
		_ = m.KilledCount()
	}
}

// BenchmarkFig8aTailDistribution (E5) builds the void-tail length
// comparison and reports the worst-bin error.
func BenchmarkFig8aTailDistribution(b *testing.B) {
	p := core.Baseline()
	var d *experiments.Distribution
	for i := 0; i < b.N; i++ {
		var err error
		d, err = experiments.Fig8aTailDistribution(p, uint64(i), 100000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.MaxBinError(2000), "maxBinErr")
}

// BenchmarkFig9aMainVoidDistribution (E7) builds the D2W main-void size
// comparison.
func BenchmarkFig9aMainVoidDistribution(b *testing.B) {
	p := core.Baseline()
	var d *experiments.Distribution
	for i := 0; i < b.N; i++ {
		var err error
		d, err = experiments.Fig9aMainVoidDistribution(p, uint64(i), 100000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.MaxBinError(2000), "maxBinErr")
}

// BenchmarkFig11W2WCases (E10) evaluates the full W2W case-study grid.
func BenchmarkFig11W2WCases(b *testing.B) {
	base := core.Baseline()
	grid := experiments.DefaultCaseGrid()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunCases(base, grid); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12D2WCases (E11) is the same grid; the D2W breakdown and
// Y_sys come from the same RunCases pass, so the workload is shared.
func BenchmarkFig12D2WCases(b *testing.B) {
	base := core.Baseline()
	grid := experiments.DefaultCaseGrid()
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunCases(base, grid)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(results[len(results)-1].SystemYield, "Ysys_last")
		}
	}
}

// BenchmarkAblation2DMisalignment (A1) runs the simulator under the 2-D
// random-misalignment convention to price the paper's scalar approximation.
func BenchmarkAblation2DMisalignment(b *testing.B) {
	p := core.Baseline().WithPitch(1 * units.Micrometer)
	for i := 0; i < b.N; i++ {
		res, err := sim.RunD2W(sim.Options{
			Params: p, Seed: uint64(i), Dies: 2000, TwoDRandomMisalignment: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.OverlayYield, "Yovl2D")
		}
	}
}

// BenchmarkAblationMainVoidDisk (A2) runs the W2W simulator with the
// main-void disk kill enabled, pricing the tail-only line-defect
// simplification.
func BenchmarkAblationMainVoidDisk(b *testing.B) {
	p := core.Baseline()
	for i := 0; i < b.N; i++ {
		res, err := sim.RunW2W(sim.Options{
			Params: p, Seed: uint64(i), Wafers: 20, IncludeMainVoidW2W: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.DefectYield, "YdfDisk")
		}
	}
}

// BenchmarkAblationDeltaSolver (A3) times the δ computation (bisected
// contact-area bound vs closed-form critical-distance bound) across a pitch
// sweep — the inner loop of any pitch optimization built on YAP.
func BenchmarkAblationDeltaSolver(b *testing.B) {
	base := core.Baseline()
	for i := 0; i < b.N; i++ {
		for _, um := range []float64{0.5, 1, 2, 4, 6, 8, 10} {
			g := base.WithPitch(um * units.Micrometer).PadGeometry()
			if g.MaxMisalignment() <= 0 {
				b.Fatal("non-positive delta")
			}
		}
	}
}

// BenchmarkAblationModelConventionDefects (A2 companion) runs the W2W
// simulator under the analytic model's defect idealizations, isolating the
// wafer-edge effect quantified in EXPERIMENTS.md.
func BenchmarkAblationModelConventionDefects(b *testing.B) {
	p := core.Baseline()
	for i := 0; i < b.N; i++ {
		res, err := sim.RunW2W(sim.Options{
			Params: p, Seed: uint64(i), Wafers: 20, ModelConventionDefects: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.DefectYield, "YdfConv")
		}
	}
}

// BenchmarkExtensionAssembly evaluates the system-assembly extension
// (chiplet yield × bond yield with spares) across the KGD/spares variants.
func BenchmarkExtensionAssembly(b *testing.B) {
	cfg := yapAssemblyBase()
	for i := 0; i < b.N; i++ {
		if _, err := EvaluateAssemblyD2W(cfg); err != nil {
			b.Fatal(err)
		}
		kgd := cfg
		kgd.KnownGoodDie = true
		kgd.SpareSites = 2
		if _, err := EvaluateAssemblyD2W(kgd); err != nil {
			b.Fatal(err)
		}
		if _, err := EvaluateAssemblyW2W(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func yapAssemblyBase() AssemblyConfig {
	return AssemblyConfig{
		Bonding:    Baseline(),
		Process:    ChipletProcess{DefectDensity: 0.5 * 1e4, Clustering: 3},
		SystemArea: 1000 * units.SquareMillimeter,
	}
}

// BenchmarkExtensionTCB evaluates the thermal-compression bonding model.
func BenchmarkExtensionTCB(b *testing.B) {
	p := DefaultTCB()
	for i := 0; i < b.N; i++ {
		if _, err := EvaluateTCB(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesignRuleExtraction times the MinPitch design-rule inversion —
// ~30 model evaluations per rule, the pathfinding loop of the abstract.
func BenchmarkDesignRuleExtraction(b *testing.B) {
	base := Baseline()
	for i := 0; i < b.N; i++ {
		if _, err := MinPitch(DesignW2W, base, 0.7, 0.5*units.Micrometer, 10*units.Micrometer); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSystemYield evaluates the §IV-C system-yield curve.
func BenchmarkSystemYield(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, mm2 := range []float64{10, 50, 100} {
			p := core.Baseline().WithDieArea(mm2 * units.SquareMillimeter)
			if _, _, err := p.SystemYield(experiments.SystemArea); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDistShardPlan times planning a paper-scale D2W run (20000
// samples) across a 16-worker fleet at the default two shards per worker
// — the coordinator-side cost paid once per distributed run.
func BenchmarkDistShardPlan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := dist.Plan(20000, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistMerge times folding 32 shard Results into one — the other
// coordinator-side cost per distributed run (integer sums plus one yield
// recomputation; dispatch latency dwarfs both).
func BenchmarkDistMerge(b *testing.B) {
	parts := make([]sim.Result, 32)
	for i := range parts {
		parts[i] = sim.Result{
			Mode: "D2W",
			Counts: sim.Counts{Dies: 625, OverlayPass: 620, DefectPass: 600,
				RecessPass: 615, Survived: 590},
			Completed: 625, Requested: 625,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Merge(parts...); err != nil {
			b.Fatal(err)
		}
	}
}
