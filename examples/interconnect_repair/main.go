// Interconnect repair: quantify how much bonding yield spare-lane
// redundancy (IEEE P3405-style mux repair) buys at fine pitch — the
// fault-tolerance direction the paper's conclusion points at. The spare
// lanes consume real pads, so the tradeoff is connectivity overhead
// against the Cu-recess yield term the pad count otherwise destroys.
//
// Run with:
//
//	go run ./examples/interconnect_repair
package main

import (
	"fmt"
	"log"

	"yap"
)

func main() {
	// The regime where repair matters: 1 µm pitch (10⁸ pads per 10×10 mm
	// die) in a clean line, so recess variation is the limiter.
	p := yap.WithDefectDensity(yap.WithPitch(yap.Baseline(), 1e-6), 100) // 0.01 cm⁻²

	base, err := yap.EvaluateW2W(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1 um pitch W2W without repair: Y_cr=%.4f, Y=%.4f\n\n", base.Recess, base.Total)

	fmt.Println("scheme (g+r)   | overhead | Y_cr      | Y_W2W   | gain")
	fmt.Println("---------------+----------+-----------+---------+---------")
	for _, s := range []yap.RepairScheme{
		{GroupSize: 1, Spares: 0},
		{GroupSize: 256, Spares: 1},
		{GroupSize: 64, Spares: 1},
		{GroupSize: 32, Spares: 1},
		{GroupSize: 64, Spares: 2},
	} {
		r, err := yap.EvaluateRepairW2W(p, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d + %d       | %6.2f%%  | %.7f | %.5f | %+.2f pts\n",
			s.GroupSize, s.Spares, s.Overhead()*100,
			r.Repaired, r.TotalRepaired, (r.TotalRepaired-r.TotalUnrepaired)*100)
	}

	// With Table I recess control a single spare per group is enough —
	// lane failures are ~1e-9 so double failures never land in one group.
	// The spare count starts to matter when CMP control degrades: at a
	// 12 nm mean recess the per-lane failure rate is ~1e-3 and the
	// no-repair yield is zero.
	fmt.Println()
	degraded := p
	degraded.RecessTop, degraded.RecessBottom = 12e-9, 12e-9
	db, err := yap.EvaluateW2W(degraded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degraded CMP (12 nm recess): Y_cr without repair = %.2e\n\n", db.Recess)
	fmt.Println("spares per 64-lane group | Y_cr")
	fmt.Println("-------------------------+----------")
	for r := 0; r <= 7; r++ {
		res, err := yap.EvaluateRepairW2W(degraded, yap.RepairScheme{GroupSize: 64, Spares: r})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("          %d              | %.6f\n", r, res.Repaired)
	}

	// Design question: how many spares does a 99.9% recess target need as
	// CMP control degrades?
	fmt.Println()
	fmt.Println("spares per 64-lane group for Y_cr >= 99.9% at 1 um pitch:")
	for _, nm := range []float64{10, 11, 12, 13} {
		q := p
		q.RecessTop, q.RecessBottom = nm*1e-9, nm*1e-9
		r, err := yap.RequiredSpares(q, 64, 16, 0.999)
		if err != nil {
			fmt.Printf("  %.0f nm recess: %v\n", nm, err)
			continue
		}
		fmt.Printf("  %.0f nm recess: %d spare(s)\n", nm, r)
	}
}
