// Process control: quantify the §IV-A claim that tighter process control —
// a 10× particle-density improvement, tighter recess control, smoother
// dielectrics, better-compensated warpage — buys yield, and find which
// knob matters most in each pitch regime. This is the system-technology
// co-optimization loop YAP's speed makes practical.
//
// Run with:
//
//	go run ./examples/process_control
package main

import (
	"fmt"
	"log"

	"yap"
)

// knob is one process-control improvement applied to a parameter set.
type knob struct {
	name  string
	apply func(yap.Params) yap.Params
}

func knobs() []knob {
	return []knob{
		{"baseline (Table I)", func(p yap.Params) yap.Params { return p }},
		{"10x cleaner (D_t/10)", func(p yap.Params) yap.Params {
			return yap.WithDefectDensity(p, p.DefectDensity/10)
		}},
		{"recess sigma 1.0 -> 0.5 nm", func(p yap.Params) yap.Params {
			p.RecessSigma = 0.5e-9
			return p
		}},
		{"recess mean 10 -> 7 nm", func(p yap.Params) yap.Params {
			p.RecessTop, p.RecessBottom = 7e-9, 7e-9
			return p
		}},
		{"roughness 1.0 -> 0.5 nm", func(p yap.Params) yap.Params {
			p.Roughness = 0.5e-9
			return p
		}},
		{"warpage 10 -> 3 um", func(p yap.Params) yap.Params {
			p.Warpage = 3e-6
			p.PlacementWarpageSigma = 1e-6
			return p
		}},
		{"placement sigma halved", func(p yap.Params) yap.Params {
			p.PlacementTranslationSigma /= 2
			p.PlacementRotationSigma /= 2
			p.PlacementWarpageSigma /= 2
			return p
		}},
	}
}

func main() {
	for _, pitchUm := range []float64{6, 1} {
		fmt.Printf("== %g um pitch ==\n", pitchUm)
		base := yap.WithPitch(yap.Baseline(), pitchUm*1e-6)
		baseW, err := yap.EvaluateW2W(base)
		if err != nil {
			log.Fatal(err)
		}
		baseD, err := yap.EvaluateD2W(base)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Println("improvement                  | Y_W2W   (delta)   | Y_D2W   (delta)")
		fmt.Println("-----------------------------+-------------------+------------------")
		for _, k := range knobs() {
			p := k.apply(base)
			w, err := yap.EvaluateW2W(p)
			if err != nil {
				log.Fatalf("%s: %v", k.name, err)
			}
			d, err := yap.EvaluateD2W(p)
			if err != nil {
				log.Fatalf("%s: %v", k.name, err)
			}
			fmt.Printf("%-28s | %.4f (%+.2fpts) | %.4f (%+.2fpts)\n",
				k.name,
				w.Total, (w.Total-baseW.Total)*100,
				d.Total, (d.Total-baseD.Total)*100)
		}
		fmt.Println()
	}

	fmt.Println("Reading: at 6 um everything is particles — only the cleanroom knob")
	fmt.Println("moves yield. At 1 um, W2W wants recess control while D2W wants")
	fmt.Println("placement/warpage control, matching the paper's Figs. 11-12 story.")
}
