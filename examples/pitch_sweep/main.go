// Pitch sweep: reproduce the paper's §IV-B study of how the bonding pitch
// drives yield, sweeping from today's relaxed 10 µm down to the aggressive
// sub-µm regime the industry is scaling toward. Pads follow the case-study
// sizing rule (bottom pad = p/2, top = p/3).
//
// The sweep shows the paper's three §IV-B observations:
//   - W2W yield loss at fine pitch is driven by Cu recess (pad count grows
//     as 1/p²);
//   - D2W collapses earlier, driven by overlay (smaller δ at fixed
//     placement accuracy);
//   - defect yield barely moves (voids dwarf any pitch).
//
// Run with:
//
//	go run ./examples/pitch_sweep
package main

import (
	"fmt"
	"log"

	"yap"
)

func main() {
	pitchesUm := []float64{10, 8, 6, 4, 3, 2, 1.5, 1, 0.8}

	fmt.Println("pitch   | W2W: Yovl   Ycr    Ydf    Y      | D2W: Yovl   Ycr    Ydf    Y")
	fmt.Println("--------+------------------------------------+---------------------------------")
	for _, um := range pitchesUm {
		p := yap.WithPitch(yap.Baseline(), um*1e-6)
		w, err := yap.EvaluateW2W(p)
		if err != nil {
			log.Fatalf("pitch %g um: %v", um, err)
		}
		d, err := yap.EvaluateD2W(p)
		if err != nil {
			log.Fatalf("pitch %g um: %v", um, err)
		}
		fmt.Printf("%5.1fum |     %.4f %.4f %.4f %.4f |     %.4f %.4f %.4f %.4f\n",
			um, w.Overlay, w.Recess, w.Defect, w.Total,
			d.Overlay, d.Recess, d.Defect, d.Total)
	}

	fmt.Println()
	fmt.Println("Crossover check: the finest pitch at which each style still clears 90%:")
	for _, style := range []string{"W2W", "D2W"} {
		finest := 0.0
		for _, um := range pitchesUm {
			p := yap.WithPitch(yap.Baseline(), um*1e-6)
			var y float64
			if style == "W2W" {
				b, err := yap.EvaluateW2W(p)
				if err != nil {
					log.Fatal(err)
				}
				y = b.Total
			} else {
				b, err := yap.EvaluateD2W(p)
				if err != nil {
					log.Fatal(err)
				}
				y = b.Total
			}
			if y >= 0.9 {
				finest = um
			}
		}
		if finest > 0 {
			fmt.Printf("  %s: %.1f um\n", style, finest)
		} else {
			fmt.Printf("  %s: none in the swept range\n", style)
		}
	}
}
