// HBM stack: apply YAP to the paper's headline motivating application —
// high-bandwidth-memory-style W2W stacking (§I cites HBM and logic-memory
// integration as the drivers of hybrid bonding). A T-high DRAM stack bonds
// T−1 wafer interfaces before dicing; every tier's silicon and every
// interface's bond and TSVs must work, so yield compounds steeply with
// stack height — the reason real HBM employs repair everywhere.
//
// Run with:
//
//	go run ./examples/hbm_stack
package main

import (
	"fmt"
	"log"

	"yap"
)

func main() {
	// One HBM-style DRAM die: ~70 mm², bonded at the Table I process.
	die := yap.WithDieArea(yap.Baseline(), 70e-6)
	process := yap.ChipletProcess{DefectDensity: 0.3e4, Clustering: 3} // mature DRAM line: 0.3 cm⁻²

	bond, err := yap.EvaluateW2W(die)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-interface W2W bond yield at 6 um pitch: %.4f\n\n", bond.Total)

	fmt.Println("stack height vs stacked-die yield (70 mm2 dies, 1024 TSVs/tier):")
	fmt.Println("tiers | Y_chip^T  Y_bond^(T-1)  Y_tsv^(T-1) | Y_stack")
	fmt.Println("------+-------------------------------------+--------")
	for _, tiers := range []int{2, 4, 8, 12, 16} {
		cfg := yap.AssemblyConfig{
			Bonding:        die,
			Process:        process,
			SystemArea:     70e-6, // one stack footprint
			Tiers:          tiers,
			TSVsPerChiplet: 1024,
			TSVFailureProb: 1e-6,
		}
		r, err := yap.EvaluateAssemblyW2W(cfg)
		if err != nil {
			log.Fatal(err)
		}
		chipPart := pow(r.ChipletYield, tiers)
		bondPart := pow(r.BondYield, tiers-1)
		tsvPart := r.SiteYield / (chipPart * bondPart)
		fmt.Printf("%5d | %.4f    %.4f        %.4f       | %.4f\n",
			tiers, chipPart, bondPart, tsvPart, r.SiteYield)
	}

	fmt.Println()
	fmt.Println("What a 10x cleaner bonding line buys an 8-high stack:")
	for _, d := range []float64{0.1, 0.01} {
		clean := yap.WithDefectDensity(die, d*1e4)
		cfg := yap.AssemblyConfig{
			Bonding:        clean,
			Process:        process,
			SystemArea:     70e-6,
			Tiers:          8,
			TSVsPerChiplet: 1024,
			TSVFailureProb: 1e-6,
		}
		r, err := yap.EvaluateAssemblyW2W(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  D_t = %.2f cm^-2: Y_stack = %.4f\n", d, r.SiteYield)
	}
	fmt.Println()
	fmt.Println("Bond yield compounds through T-1 interfaces: at 8-high the bonding")
	fmt.Println("line's particle spec dominates the whole stack economics — the")
	fmt.Println("co-optimization YAP's model makes cheap to explore.")
}

func pow(x float64, n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= x
	}
	return r
}
