// Quickstart: evaluate the YAP hybrid-bonding yield model at the paper's
// Table I baseline, cross-check it against a short Monte-Carlo simulation,
// and print the per-mechanism breakdown.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"yap"
)

func main() {
	// The baseline process: 6 µm pitch Cu–SiO₂ hybrid bonding on a 300 mm
	// wafer with 10×10 mm dies (paper Table I).
	p := yap.Baseline()

	// Analytic model: microseconds–milliseconds per evaluation.
	w2w, err := yap.EvaluateW2W(p)
	if err != nil {
		log.Fatal(err)
	}
	d2w, err := yap.EvaluateD2W(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("analytic model")
	fmt.Printf("  W2W: %v (limited by %s)\n", w2w, w2w.Limiter())
	fmt.Printf("  D2W: %v (limited by %s)\n", d2w, d2w.Limiter())

	// Monte-Carlo simulator: same physics, sampled instead of integrated.
	// 200 wafers ≈ 130k die samples, enough for ±0.3% here.
	res, err := yap.SimulateW2W(yap.SimOptions{Params: p, Wafers: 200, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("simulator")
	fmt.Printf("  %v\n", res)

	// The headline system-level question: what does bonding yield do to a
	// 1000 mm² 2.5D system assembled from these chiplets?
	ySys, n, err := yap.SystemYield(p, 1000e-6) // 1000 mm² in m²
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system: %d chiplets -> Y_sys = %.2f%%\n", n, ySys*100)
}
