// System assembly: drive the two future-work extensions of the paper —
// the full system assembly yield model (chiplet front-end yield × bonding
// yield, with known-good-die testing, spares and the "how small is too
// small" cost optimum) and the thermal-compression bonding (TCB) variant
// for technology selection against hybrid bonding.
//
// Run with:
//
//	go run ./examples/system_assembly
package main

import (
	"fmt"
	"log"

	"yap"
)

func main() {
	assemblyStudy()
	fmt.Println()
	tcbStudy()
}

func assemblyStudy() {
	fmt.Println("== 1000 mm2 system from 100 mm2 chiplets, D0 = 0.5/cm2 front-end ==")
	base := yap.AssemblyConfig{
		Bonding:    yap.Baseline(),
		Process:    yap.ChipletProcess{DefectDensity: 0.5e4, Clustering: 3}, // 0.5 cm⁻²
		SystemArea: 1000e-6,
	}

	scenarios := []struct {
		name string
		cfg  func() yap.AssemblyConfig
		w2w  bool
	}{
		{"W2W 2-tier stack (untested dies)", func() yap.AssemblyConfig { return base }, true},
		{"D2W, untested dies", func() yap.AssemblyConfig { return base }, false},
		{"D2W + known-good-die", func() yap.AssemblyConfig { c := base; c.KnownGoodDie = true; return c }, false},
		{"D2W + KGD + 2 spare sites", func() yap.AssemblyConfig {
			c := base
			c.KnownGoodDie = true
			c.SpareSites = 2
			return c
		}, false},
	}
	for _, s := range scenarios {
		var (
			r   yap.AssemblyResult
			err error
		)
		if s.w2w {
			r, err = yap.EvaluateAssemblyW2W(s.cfg())
		} else {
			r, err = yap.EvaluateAssemblyD2W(s.cfg())
		}
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		fmt.Printf("  %-34s %v\n", s.name, r)
	}

	// The chiplet-size economics: silicon consumed per good system.
	fmt.Println()
	fmt.Println("chiplet size vs silicon cost per good system (D2W + KGD):")
	cfg := base
	cfg.KnownGoodDie = true
	cfg.Process.DefectDensity = 2e4 // a hard 2 cm⁻² process
	cfg.Process.Clustering = 0
	areas := []float64{4e-6, 10e-6, 20e-6, 40e-6, 50e-6, 100e-6, 200e-6, 500e-6}
	for _, a := range areas {
		c := cfg
		c.Bonding = yap.WithDieArea(c.Bonding, a)
		cost, err := yap.YieldedCostD2W(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4.0f mm2 chiplets: %7.0f mm2 silicon / good system\n", a*1e6, cost*1e6)
	}
	best, cost, err := yap.CheapestChipletArea(cfg, areas)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  optimum: %.0f mm2 (%.0f mm2 / good system)\n", best*1e6, cost*1e6)
}

func tcbStudy() {
	fmt.Println("== technology selection: TCB microbumps vs hybrid bonding ==")
	tcb := yap.DefaultTCB()
	tb, err := yap.EvaluateTCB(tcb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  TCB @ 40 um pitch:         Y_ovl=%.4f Y_height=%.4f Y_df=%.4f Y=%.4f\n",
		tb.Overlay, tb.Recess, tb.Defect, tb.Total)

	hb, err := yap.EvaluateW2W(yap.Baseline())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  hybrid W2W @ 6 um pitch:   Y_ovl=%.4f Y_cr=%.4f Y_df=%.4f Y=%.4f\n",
		hb.Overlay, hb.Recess, hb.Defect, hb.Total)

	fine := tcb
	fine.Pitch = 1e-6
	fine.BumpDiameter = 0.5e-6
	fine.PadDiameter = 0.63e-6
	ftb, err := yap.EvaluateTCB(fine)
	if err != nil {
		log.Fatal(err)
	}
	fhb, err := yap.EvaluateW2W(yap.WithPitch(yap.Baseline(), 1e-6))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  TCB @ 1 um pitch:          Y=%.4f   (placement-limited)\n", ftb.Total)
	fmt.Printf("  hybrid W2W @ 1 um pitch:   Y=%.4f\n", fhb.Total)
	fmt.Println()
	fmt.Println("  TCB's standoff shrugs off small particles, so it wins at relaxed")
	fmt.Println("  pitch; below a few microns only hybrid bonding yields — the")
	fmt.Println("  technology crossover YAP's framework makes quantitative.")
}
