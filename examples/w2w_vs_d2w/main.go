// W2W vs D2W: reproduce the paper's §IV-C chiplet-size study. Die-level
// bonding yield falls with chiplet size for both styles (more pads, more
// defect area), but the system-level picture inverts for D2W: fewer, larger
// chiplets compound fewer bonding risks, so Y_sys of a fixed 1000 mm²
// system *rises* with chiplet size even as Y_D2W falls.
//
// Run with:
//
//	go run ./examples/w2w_vs_d2w
package main

import (
	"fmt"
	"log"

	"yap"
)

func main() {
	const systemArea = 1000e-6 // 1000 mm² of 2.5D system silicon

	fmt.Println("chiplet | Y_W2W   Y_D2W   | chiplets  Y_sys(D2W)")
	fmt.Println("--------+-----------------+---------------------")
	for _, mm2 := range []float64{5, 10, 25, 50, 100, 200} {
		p := yap.WithDieArea(yap.Baseline(), mm2*1e-6)
		w, err := yap.EvaluateW2W(p)
		if err != nil {
			log.Fatalf("%g mm2: %v", mm2, err)
		}
		d, err := yap.EvaluateD2W(p)
		if err != nil {
			log.Fatalf("%g mm2: %v", mm2, err)
		}
		ySys, n, err := yap.SystemYield(p, systemArea)
		if err != nil {
			log.Fatalf("%g mm2: %v", mm2, err)
		}
		fmt.Printf("%4.0fmm2 | %.4f  %.4f  | %8d  %.4f\n", mm2, w.Total, d.Total, n, ySys)
	}

	fmt.Println()
	fmt.Println("Same comparison at 1 um pitch, where alignment separates the styles:")
	fmt.Println("chiplet | Y_W2W   Y_D2W   | W2W advantage")
	fmt.Println("--------+-----------------+--------------")
	for _, mm2 := range []float64{10, 50, 100} {
		p := yap.WithPitch(yap.WithDieArea(yap.Baseline(), mm2*1e-6), 1e-6)
		w, err := yap.EvaluateW2W(p)
		if err != nil {
			log.Fatal(err)
		}
		d, err := yap.EvaluateD2W(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4.0fmm2 | %.4f  %.4f  | %+.1f pts\n",
			mm2, w.Total, d.Total, (w.Total-d.Total)*100)
	}
	fmt.Println()
	fmt.Println("(W2W wins at fine pitch by alignment; D2W recovers known-good-die")
	fmt.Println(" economics that this bonding-only model deliberately excludes.)")
}
