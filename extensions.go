package yap

// This file exposes the two model extensions the paper lists as future
// work (§V) and this repository implements: the system assembly yield
// model (assembly of tested/untested chiplets with spares, after Graening
// et al. [10]) and the thermal-compression bonding variant.

import (
	"io"

	"yap/internal/assembly"
	"yap/internal/core"
	"yap/internal/design"
	"yap/internal/repair"
	"yap/internal/tcb"
)

// LoadParams reads a process description from a JSON file; missing fields
// default to the Table I baseline and the result is validated.
func LoadParams(path string) (Params, error) { return core.LoadParams(path) }

// ReadParams decodes a process description from JSON.
func ReadParams(r io.Reader) (Params, error) { return core.ReadParams(r) }

// DesignMode selects the bonding style a design rule is derived for.
type DesignMode = design.Mode

// Design-rule bonding styles.
const (
	DesignW2W = design.W2W
	DesignD2W = design.D2W
)

// MinPitch returns the finest bonding pitch meeting the target yield (the
// pitch-scaling design rule), searching [pitchLo, pitchHi] with the
// case-study pad sizing rule.
func MinPitch(m DesignMode, base Params, target, pitchLo, pitchHi float64) (float64, error) {
	return design.MinPitch(m, base, target, pitchLo, pitchHi)
}

// MaxDefectDensity returns the dirtiest particle environment (m⁻²) meeting
// the target yield — the cleanroom specification.
func MaxDefectDensity(m DesignMode, base Params, target, dLo, dHi float64) (float64, error) {
	return design.MaxDefectDensity(m, base, target, dLo, dHi)
}

// MaxRecess returns the deepest mean Cu recess (m) meeting the target
// yield — the CMP control specification.
func MaxRecess(m DesignMode, base Params, target, rLo, rHi float64) (float64, error) {
	return design.MaxRecess(m, base, target, rLo, rHi)
}

// MaxWarpage returns the largest bonded-wafer warpage (m) meeting the
// target yield — the run-out compensation specification.
func MaxWarpage(m DesignMode, base Params, target, bLo, bHi float64) (float64, error) {
	return design.MaxWarpage(m, base, target, bLo, bHi)
}

// ChipletProcess describes front-end (pre-bond) chiplet defectivity for
// the assembly model: negative-binomial defect yield with clustering
// parameter α (Poisson when α ≤ 0).
type ChipletProcess = assembly.ChipletProcess

// AssemblyConfig describes a full system assembly scenario: bonding
// process, chiplet process, system area, W2W stack tiers, known-good-die
// testing and spare sites.
type AssemblyConfig = assembly.Config

// AssemblyResult is one assembly evaluation (chiplet, bond, site and
// system yields).
type AssemblyResult = assembly.Result

// EvaluateAssemblyD2W computes the system yield of a 2.5D D2W assembly.
func EvaluateAssemblyD2W(cfg AssemblyConfig) (AssemblyResult, error) {
	return assembly.EvaluateD2W(cfg)
}

// EvaluateAssemblyW2W computes the system yield of a W2W 3D stack.
func EvaluateAssemblyW2W(cfg AssemblyConfig) (AssemblyResult, error) {
	return assembly.EvaluateW2W(cfg)
}

// YieldedCostD2W returns the expected silicon area consumed per good D2W
// system — the "how small is too small" cost metric.
func YieldedCostD2W(cfg AssemblyConfig) (float64, error) {
	return assembly.YieldedCostD2W(cfg)
}

// CheapestChipletArea sweeps chiplet areas and returns the yielded-cost
// minimizer and its cost.
func CheapestChipletArea(cfg AssemblyConfig, areas []float64) (bestArea, bestCost float64, err error) {
	return assembly.CheapestChipletArea(cfg, areas)
}

// RepairScheme is a spare-lane interconnect redundancy architecture
// (IEEE P3405-style mux repair): groups of GroupSize signal lanes share
// Spares spare lanes.
type RepairScheme = repair.Scheme

// RepairResult reports a repaired-yield evaluation: the recess yield term
// and total bonding yield with and without the scheme.
type RepairResult = repair.Result

// EvaluateRepairW2W returns the W2W bonding yield with the spare-lane
// scheme applied to the per-pad (Cu recess) failure mechanism.
func EvaluateRepairW2W(p Params, s RepairScheme) (RepairResult, error) {
	return repair.EvaluateW2W(p, s)
}

// EvaluateRepairD2W is EvaluateRepairW2W for die-to-wafer bonding.
func EvaluateRepairD2W(p Params, s RepairScheme) (RepairResult, error) {
	return repair.EvaluateD2W(p, s)
}

// RequiredSpares returns the smallest spare count per group of groupSize
// lanes that lifts the recess yield term to the target.
func RequiredSpares(p Params, groupSize, maxSpares int, target float64) (int, error) {
	return repair.RequiredSpares(p, groupSize, maxSpares, target)
}

// DieYield is a per-die-site resolved W2W yield prediction.
type DieYield = core.DieYield

// W2WDieYields returns the per-die yield map of the W2W model — the
// spatial resolution behind the paper's center-vs-edge observation.
func W2WDieYields(p Params) ([]DieYield, error) { return p.W2WDieYields() }

// RadialProfile bins per-die yields by radius and returns bin centers and
// mean yields.
func RadialProfile(dies []DieYield, bins int, waferRadius float64) (centers, yields []float64) {
	return core.RadialProfile(dies, bins, waferRadius)
}

// TCBParams describes a thermal-compression (solder microbump) bonding
// process.
type TCBParams = tcb.Params

// DefaultTCB returns a representative 40 µm-pitch TCB process sharing the
// paper's particle environment.
func DefaultTCB() TCBParams { return tcb.DefaultParams() }

// EvaluateTCB returns the TCB yield breakdown (overlay / joint-height /
// defect), comparable field-for-field with the hybrid-bonding Breakdown.
func EvaluateTCB(p TCBParams) (Breakdown, error) { return p.Evaluate() }
